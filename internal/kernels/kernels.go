// Package kernels describes GPU work the way the command processor sees it:
// kernels with argument metadata (data structures, access modes, address
// ranges) and work-group grids that static kernel-wide partitioning splits
// across chiplets.
//
// It also generates each kernel's line-granularity memory access stream.
// CPElide never inspects instruction streams — it acts on kernel argument
// metadata and WG placement — so workloads are modeled as declarative access
// patterns (linear, strided, stencil, broadcast, indirect) that reproduce
// the cache- and NUMA-relevant behavior of the paper's 24 benchmarks.
package kernels

import (
	"fmt"

	"repro/internal/mem"
)

// AccessMode is a data structure's declared access mode for one kernel,
// matching the paper's hipSetAccessMode labels.
type AccessMode uint8

const (
	// Read marks a data structure as read-only in the kernel (label "R").
	Read AccessMode = iota
	// ReadWrite marks a data structure as written, possibly also read
	// (label "R/W").
	ReadWrite
)

func (m AccessMode) String() string {
	if m == Read {
		return "R"
	}
	return "R/W"
}

// Pattern selects how a kernel's WGs touch an argument.
type Pattern uint8

const (
	// Linear: WG i touches the i-th contiguous slice of the structure.
	Linear Pattern = iota
	// Strided: like Linear but touching every Stride-th line of the slice.
	Strided
	// Stencil: Linear plus HaloLines lines into each neighboring slice,
	// producing boundary sharing between adjacent WGs and chiplets.
	Stencil
	// Broadcast: the whole structure is read by every chiplet (shared
	// weights, lookup tables). Modeled as Sweeps full passes per chiplet.
	Broadcast
	// Indirect: data-dependent gathers. The WG reads its slice of the
	// index structure linearly and touches pseudo-random lines anywhere in
	// this structure, reproducing graph-workload irregularity.
	Indirect
)

func (p Pattern) String() string {
	switch p {
	case Linear:
		return "linear"
	case Strided:
		return "strided"
	case Stencil:
		return "stencil"
	case Broadcast:
		return "broadcast"
	case Indirect:
		return "indirect"
	}
	return fmt.Sprintf("pattern(%d)", uint8(p))
}

// DataStructure is one global-memory allocation (an array in the paper's
// terminology). The Chiplet Coherence Table tracks state at this
// granularity.
type DataStructure struct {
	Name     string
	Base     mem.Addr
	Bytes    uint64
	ElemSize int
}

// Range returns the structure's full address range.
func (d *DataStructure) Range() mem.Range {
	return mem.Range{Lo: d.Base, Hi: d.Base + mem.Addr(d.Bytes)}
}

// Elems returns the element count.
func (d *DataStructure) Elems() int { return int(d.Bytes) / d.ElemSize }

// Arg binds a data structure into a kernel with its access metadata.
type Arg struct {
	DS      *DataStructure
	Mode    AccessMode
	Pattern Pattern

	// Stride is the line stride for Strided (>= 1; 1 behaves as Linear).
	Stride int
	// HaloLines is the per-side halo width for Stencil, in cache lines.
	HaloLines int
	// Sweeps is the number of full per-chiplet passes for Broadcast
	// (default 1).
	Sweeps int
	// TouchesPerLine is the number of indirect touches generated per index
	// line for Indirect (default 4).
	TouchesPerLine int
	// WorkLinesPerWG overrides the number of index lines each WG processes
	// for Indirect (default: the WG's share of the structure's lines).
	// Workloads whose gather volume is set by a separate worklist (BTree
	// queries, BFS frontiers) use this to decouple per-kernel work from
	// the target structure's size.
	WorkLinesPerWG int
	// HotFraction restricts Indirect touches to the leading fraction of
	// the structure (0 => whole structure), modeling skewed graph degree
	// distributions.
	HotFraction float64
	// ReadModifyWrite makes ReadWrite args load each line before storing
	// it (e.g. +=). Plain ReadWrite args are streaming stores.
	ReadModifyWrite bool
}

// Kernel is a static kernel: the unit the CP launches and the granularity at
// which implicit synchronization happens.
type Kernel struct {
	Name string
	Args []Arg

	// WGs is the grid size in work-groups.
	WGs int
	// ComputePerWG is the ALU work per WG in cycles; it sets where the
	// kernel sits between compute- and memory-bound.
	ComputePerWG uint32
	// LDSBytesPerWG is scratchpad traffic per WG (energy accounting and
	// the LDS-staging behavior of workloads like LUD and Backprop).
	LDSBytesPerWG int
	// MLPFactor scales the machine's base memory-level parallelism for
	// this kernel (1.0 = default). High values model workloads whose
	// abundant MLP hides L2 misses (FW, Gaussian, HACC in the paper).
	MLPFactor float64
}

// Validate reports structural problems in the kernel description.
func (k *Kernel) Validate() error {
	if k.Name == "" {
		return fmt.Errorf("kernels: kernel with empty name")
	}
	if k.WGs <= 0 {
		return fmt.Errorf("kernels: %s: WGs must be positive", k.Name)
	}
	if len(k.Args) == 0 {
		return fmt.Errorf("kernels: %s: no arguments", k.Name)
	}
	for i, a := range k.Args {
		if a.DS == nil {
			return fmt.Errorf("kernels: %s: arg %d has nil data structure", k.Name, i)
		}
		if a.DS.Bytes == 0 {
			return fmt.Errorf("kernels: %s: arg %d (%s) has zero size", k.Name, i, a.DS.Name)
		}
		if a.Pattern == Strided && a.Stride < 1 {
			return fmt.Errorf("kernels: %s: arg %d strided with stride %d", k.Name, i, a.Stride)
		}
		if a.Pattern == Broadcast && a.Mode != Read {
			return fmt.Errorf("kernels: %s: arg %d broadcast must be read-only", k.Name, i)
		}
		if a.Pattern == Indirect && a.Mode == ReadWrite && !a.ReadModifyWrite {
			// Indirect writes are modeled as read-modify-write scatter
			// updates; a pure streaming indirect store has no GPU analogue
			// in the studied workloads.
			return fmt.Errorf("kernels: %s: arg %d indirect R/W must be ReadModifyWrite", k.Name, i)
		}
	}
	return nil
}

// MLP returns the kernel's effective MLP factor (>= a small floor).
func (k *Kernel) MLP() float64 {
	if k.MLPFactor <= 0 {
		return 1
	}
	return k.MLPFactor
}

func (a *Arg) sweeps() int {
	if a.Sweeps <= 0 {
		return 1
	}
	return a.Sweeps
}

func (a *Arg) touchesPerLine() int {
	if a.TouchesPerLine <= 0 {
		return 4
	}
	return a.TouchesPerLine
}

// ReuseClass groups workloads the way Table II does.
type ReuseClass uint8

const (
	// ModerateHighReuse marks workloads with moderate-to-high inter-kernel
	// reuse.
	ModerateHighReuse ReuseClass = iota
	// LowReuse marks workloads with low or no inter-kernel reuse.
	LowReuse
)

func (c ReuseClass) String() string {
	if c == ModerateHighReuse {
		return "moderate-to-high"
	}
	return "low"
}

// Workload is a full benchmark: its allocations and its dynamic kernel
// sequence (kernels may repeat).
type Workload struct {
	Name       string
	Class      ReuseClass
	Structures []*DataStructure
	Sequence   []*Kernel
	Seed       uint64
}

// Validate checks the workload and every kernel in it.
func (w *Workload) Validate() error {
	if w.Name == "" {
		return fmt.Errorf("kernels: workload with empty name")
	}
	if len(w.Sequence) == 0 {
		return fmt.Errorf("kernels: %s: empty kernel sequence", w.Name)
	}
	seen := map[*Kernel]bool{}
	for _, k := range w.Sequence {
		if seen[k] {
			continue
		}
		seen[k] = true
		if err := k.Validate(); err != nil {
			return fmt.Errorf("%s: %w", w.Name, err)
		}
	}
	return nil
}

// FootprintBytes returns the total bytes across all structures.
func (w *Workload) FootprintBytes() uint64 {
	var n uint64
	for _, d := range w.Structures {
		n += d.Bytes
	}
	return n
}

// Bounds returns the address range spanning all structures.
func (w *Workload) Bounds() mem.Range {
	var r mem.Range
	for _, d := range w.Structures {
		r = r.Union(d.Range())
	}
	return r
}

// Allocator hands out page-aligned base addresses for data structures.
type Allocator struct {
	next     mem.Addr
	pageSize uint64
}

// NewAllocator starts allocation at base with the given page alignment.
func NewAllocator(base mem.Addr, pageSize int) *Allocator {
	return &Allocator{next: base, pageSize: uint64(pageSize)}
}

// Alloc creates a page-aligned data structure of elems*elemSize bytes.
func (a *Allocator) Alloc(name string, elems, elemSize int) *DataStructure {
	bytes := uint64(elems) * uint64(elemSize)
	d := &DataStructure{Name: name, Base: a.next, Bytes: bytes, ElemSize: elemSize}
	a.next += mem.Addr((bytes + a.pageSize - 1) / a.pageSize * a.pageSize)
	return d
}

// Used returns the highest address allocated so far.
func (a *Allocator) Used() mem.Addr { return a.next }
