package chaos

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
)

func newBackend(t *testing.T, body string) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, body)
	}))
	t.Cleanup(srv.Close)
	return srv
}

func get(t *testing.T, client *http.Client, url string) (*http.Response, []byte, error) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return resp, b, err
}

func TestPassthroughWhenDisabled(t *testing.T) {
	srv := newBackend(t, "hello")
	tr := NewTransport(nil, Config{Seed: 1})
	client := &http.Client{Transport: tr}
	resp, b, err := get(t, client, srv.URL)
	if err != nil || resp.StatusCode != 200 || string(b) != "hello" {
		t.Fatalf("passthrough: %v %v %q", resp, err, b)
	}
	if c := tr.Counters(); c.Passed != 1 || c.Drops+c.Delays+c.Truncates+c.Errs5xx+c.Partitions != 0 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestDeterministicSchedule(t *testing.T) {
	srv := newBackend(t, "x")
	run := func(seed uint64) Counters {
		tr := NewTransport(nil, Config{Seed: seed, DropRate: 0.3, Err5xxRate: 0.2})
		client := &http.Client{Transport: tr}
		for i := 0; i < 100; i++ {
			if resp, _, err := get(t, client, srv.URL); err == nil {
				_ = resp
			}
		}
		return tr.Counters()
	}
	a, b := run(7), run(7)
	if a != b {
		t.Fatalf("same seed, different schedule: %+v vs %+v", a, b)
	}
	c := run(8)
	if a == c {
		t.Fatalf("different seeds, identical schedule: %+v", a)
	}
	if a.Drops == 0 || a.Errs5xx == 0 {
		t.Fatalf("fault mix never fired: %+v", a)
	}
}

func TestDropIsTransportError(t *testing.T) {
	srv := newBackend(t, "x")
	tr := NewTransport(nil, Config{Seed: 1, DropRate: 1})
	client := &http.Client{Transport: tr}
	_, _, err := get(t, client, srv.URL)
	if err == nil || !strings.Contains(err.Error(), "connection reset") {
		t.Fatalf("dropped request: err = %v, want reset-style transport error", err)
	}
	if c := tr.Counters(); c.Drops != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestInjected5xx(t *testing.T) {
	srv := newBackend(t, "x")
	tr := NewTransport(nil, Config{Seed: 1, Err5xxRate: 1})
	client := &http.Client{Transport: tr}
	resp, _, err := get(t, client, srv.URL)
	if err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("injected 5xx: resp=%v err=%v", resp, err)
	}
}

func TestDelay(t *testing.T) {
	srv := newBackend(t, "x")
	tr := NewTransport(nil, Config{Seed: 1, DelayRate: 1, Delay: 30 * time.Millisecond})
	client := &http.Client{Transport: tr}
	start := time.Now()
	resp, _, err := get(t, client, srv.URL)
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("delayed request: resp=%v err=%v", resp, err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("request took %v, want >= 30ms", d)
	}
}

func TestTruncate(t *testing.T) {
	body := strings.Repeat("payload-", 512)
	srv := newBackend(t, body)
	tr := NewTransport(nil, Config{Seed: 1, TruncateRate: 1})
	client := &http.Client{Transport: tr}
	_, b, err := get(t, client, srv.URL)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated read: err = %v, want unexpected EOF", err)
	}
	if len(b) == 0 || len(b) >= len(body) {
		t.Fatalf("read %d bytes of %d, want a strict prefix", len(b), len(body))
	}
	if body[:len(b)] != string(b) {
		t.Fatal("truncated body is not a prefix of the original")
	}
}

func TestPartition(t *testing.T) {
	srv := newBackend(t, "x")
	tr := NewTransport(nil, Config{Seed: 1})
	client := &http.Client{Transport: tr}
	host := strings.TrimPrefix(srv.URL, "http://")

	tr.SetPartitioned(host, true)
	if _, _, err := get(t, client, srv.URL); err == nil || !strings.Contains(err.Error(), "connection refused") {
		t.Fatalf("partitioned host: err = %v, want refused-style error", err)
	}
	tr.SetPartitioned(host, false)
	if resp, _, err := get(t, client, srv.URL); err != nil || resp.StatusCode != 200 {
		t.Fatalf("healed host: resp=%v err=%v", resp, err)
	}
	if c := tr.Counters(); c.Partitions != 1 || c.Passed != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestConcurrentTransport(t *testing.T) {
	srv := newBackend(t, "x")
	tr := NewTransport(nil, Config{Seed: 3, DropRate: 0.2, Err5xxRate: 0.1, TruncateRate: 0.1})
	client := &http.Client{Transport: tr}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				resp, err := client.Get(srv.URL)
				if err != nil {
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	c := tr.Counters()
	if total := c.Drops + c.Delays + c.Truncates + c.Errs5xx + c.Passed; total != 400 {
		t.Fatalf("accounted %d of 400 requests: %+v", total, c)
	}
}

// memStore is a minimal in-memory farm.Store for FlakyStore tests.
type memStore struct {
	mu sync.Mutex
	m  map[string]*cpelide.Report
}

func (s *memStore) Get(key string) (*cpelide.Report, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rep, ok := s.m[key]
	return rep, ok, nil
}

func (s *memStore) Put(key string, rep *cpelide.Report) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m == nil {
		s.m = make(map[string]*cpelide.Report)
	}
	s.m[key] = rep
	return nil
}

func TestFlakyStore(t *testing.T) {
	inner := &memStore{}
	fs := NewFlakyStore(inner, 9, 0.5, 0.5)
	rep := &cpelide.Report{Workload: "square"}
	var getErrs, putErrs int
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("%064x", i)
		if err := fs.Put(key, rep); err != nil {
			putErrs++
		}
		if _, _, err := fs.Get(key); err != nil {
			getErrs++
		}
	}
	if getErrs == 0 || putErrs == 0 {
		t.Fatalf("injection never fired: get=%d put=%d", getErrs, putErrs)
	}
	c := fs.Counters()
	if int(c.GetErrs) != getErrs || int(c.PutErrs) != putErrs {
		t.Fatalf("counters %+v disagree with observed get=%d put=%d", c, getErrs, putErrs)
	}
	// The inner store only sees the operations that passed.
	if len(inner.m) == 0 || len(inner.m) == 200 {
		t.Fatalf("inner store has %d entries, want a strict subset of 200", len(inner.m))
	}
	// Disabled rates consume nothing and never fail.
	quiet := NewFlakyStore(inner, 9, 0, 0)
	for i := 0; i < 50; i++ {
		if err := quiet.Put(fmt.Sprintf("%064x", i), rep); err != nil {
			t.Fatal(err)
		}
	}
}
