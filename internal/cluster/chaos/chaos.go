// Package chaos is the cluster's fault conduit: a deterministic,
// seed-driven layer that injects the failures a distributed farm actually
// sees — dropped connections, slow links, truncated responses, 5xx blips,
// partitioned nodes, and a store that returns errors — so the recovery
// machinery (journal replay, reroute, hedging, recompute-on-corruption) can
// be exercised in tests and smoke runs instead of discovered in production.
//
// It mirrors internal/faults at the serving layer: every decision is drawn
// from a splitmix64 stream seeded by Config.Seed, using the same
// consume-nothing-when-disabled discipline, so a fault schedule is a pure
// function of (seed, decision order). Requests arriving concurrently race
// for positions in the stream, so cross-goroutine schedules vary with
// scheduling — but a single-threaded driver replays exactly, and rates and
// counters are always exact.
//
// Two conduits are provided:
//
//   - Transport, an http.RoundTripper wrapper for the coordinator<->worker
//     path (drop, delay, truncate, 5xx, per-host partition).
//   - FlakyStore, a farm.Store wrapper that injects read/write errors, the
//     way a shared filesystem fails.
package chaos

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro"
	"repro/internal/farm"
)

// Config selects the fault mix. Rates are probabilities in [0,1]; the zero
// value injects nothing.
type Config struct {
	// Seed seeds the deterministic decision stream.
	Seed uint64
	// DropRate is the probability a request is dropped before reaching the
	// backend — the caller sees a transport error, as on a reset connection.
	DropRate float64
	// DelayRate is the probability a request is delayed by Delay before
	// being forwarded (a slow worker or congested link).
	DelayRate float64
	// Delay is the injected latency for delayed requests. Default 50ms.
	Delay time.Duration
	// TruncateRate is the probability a response body is cut off mid-read,
	// as when a peer dies while streaming.
	TruncateRate float64
	// Err5xxRate is the probability the backend is replaced by a
	// synthesized 503 (a crashing or overloaded process).
	Err5xxRate float64
}

// withDefaults fills the magnitude knobs that are zero.
func (c Config) withDefaults() Config {
	if c.Delay <= 0 {
		c.Delay = 50 * time.Millisecond
	}
	return c
}

// Counters tallies injected faults.
type Counters struct {
	Drops      uint64 `json:"drops"`
	Delays     uint64 `json:"delays"`
	Truncates  uint64 `json:"truncates"`
	Errs5xx    uint64 `json:"errs_5xx"`
	Partitions uint64 `json:"partitions"`
	Passed     uint64 `json:"passed"`
}

// Transport is a fault-injecting http.RoundTripper. It wraps an inner
// transport and, per request, may drop it, delay it, truncate its response,
// or synthesize a 5xx — plus hard per-host partitions toggled at runtime.
// Safe for concurrent use.
type Transport struct {
	inner http.RoundTripper
	cfg   Config

	mu          sync.Mutex
	state       uint64
	partitioned map[string]bool
	c           Counters
}

// NewTransport wraps inner (nil means http.DefaultTransport) with the fault
// mix in cfg.
func NewTransport(inner http.RoundTripper, cfg Config) *Transport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	cfg = cfg.withDefaults()
	return &Transport{
		inner:       inner,
		cfg:         cfg,
		state:       cfg.Seed,
		partitioned: make(map[string]bool),
	}
}

// next advances the splitmix64 stream (caller holds mu).
func (t *Transport) next() uint64 {
	t.state += 0x9e3779b97f4a7c15
	z := t.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// chance draws one variate and reports whether it fell under p; p <= 0
// consumes nothing so enabling one fault class does not shift the others
// (caller holds mu).
func (t *Transport) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	return float64(t.next()>>11)/(1<<53) < p
}

// SetPartitioned cuts (or heals) the link to host — every request to it
// fails immediately with a transport error, like a yanked network cable.
// host is matched against the request URL's Host (host:port).
func (t *Transport) SetPartitioned(host string, on bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if on {
		t.partitioned[host] = true
	} else {
		delete(t.partitioned, host)
	}
}

// Counters returns a snapshot of the injection tallies.
func (t *Transport) Counters() Counters {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.c
}

// transportError marks synthesized connection failures so tests can
// distinguish injected faults from real ones.
type transportError struct{ msg string }

func (e *transportError) Error() string { return e.msg }

// Timeout and Temporary let the injected error satisfy net.Error-style
// transient checks, matching how a real reset/refused connection presents.
func (e *transportError) Timeout() bool   { return false }
func (e *transportError) Temporary() bool { return true }

// RoundTrip applies the fault mix to one request. Decision order per
// request is fixed — partition, drop, 5xx, delay, truncate — so a seed
// reproduces the same schedule for the same request sequence.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.mu.Lock()
	if t.partitioned[req.URL.Host] {
		t.c.Partitions++
		t.mu.Unlock()
		return nil, &transportError{fmt.Sprintf("chaos: partitioned host %s: connection refused", req.URL.Host)}
	}
	drop := t.chance(t.cfg.DropRate)
	err5xx := !drop && t.chance(t.cfg.Err5xxRate)
	delay := !drop && !err5xx && t.chance(t.cfg.DelayRate)
	truncate := !drop && !err5xx && t.chance(t.cfg.TruncateRate)
	switch {
	case drop:
		t.c.Drops++
	case err5xx:
		t.c.Errs5xx++
	default:
		if delay {
			t.c.Delays++
		}
		if truncate {
			t.c.Truncates++
		}
		if !delay && !truncate {
			t.c.Passed++
		}
	}
	t.mu.Unlock()

	if drop {
		return nil, &transportError{fmt.Sprintf("chaos: dropped request to %s: connection reset by peer", req.URL.Host)}
	}
	if err5xx {
		return &http.Response{
			Status:     "503 Service Unavailable",
			StatusCode: http.StatusServiceUnavailable,
			Proto:      req.Proto,
			ProtoMajor: req.ProtoMajor,
			ProtoMinor: req.ProtoMinor,
			Header:     http.Header{"Content-Type": []string{"text/plain; charset=utf-8"}},
			Body:       io.NopCloser(strings.NewReader("chaos: injected 503\n")),
			Request:    req,
		}, nil
	}
	if delay {
		timer := time.NewTimer(t.cfg.Delay)
		select {
		case <-timer.C:
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		}
	}
	resp, err := t.inner.RoundTrip(req)
	if err != nil || !truncate {
		return resp, err
	}
	// Let roughly half the body through, then fail the read the way a dying
	// peer does.
	resp.Body = &truncatedBody{inner: resp.Body, remaining: truncateAt(resp.ContentLength)}
	resp.ContentLength = -1
	resp.Header.Del("Content-Length")
	return resp, nil
}

// truncateAt picks how many bytes of a body to deliver before the cut.
func truncateAt(contentLength int64) int64 {
	if contentLength > 1 {
		return contentLength / 2
	}
	return 16
}

// truncatedBody delivers a prefix of the wrapped body, then reports an
// unexpected EOF.
type truncatedBody struct {
	inner     io.ReadCloser
	remaining int64
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if int64(len(p)) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.inner.Read(p)
	b.remaining -= int64(n)
	if err == io.EOF {
		return n, io.EOF // body was shorter than the cut; pass the real end
	}
	if b.remaining <= 0 && err == nil {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (b *truncatedBody) Close() error { return b.inner.Close() }

// StoreCounters tallies injected store faults.
type StoreCounters struct {
	GetErrs uint64 `json:"get_errs"`
	PutErrs uint64 `json:"put_errs"`
	Passed  uint64 `json:"passed"`
}

// FlakyStore wraps a farm.Store and makes a seeded fraction of operations
// fail, the way a shared filesystem does under pressure. Injected Get
// errors present as corrupt entries (the farm counts them and recomputes);
// injected Put errors lose the write (the next miss recomputes). Safe for
// concurrent use.
type FlakyStore struct {
	inner      farm.Store
	getErrRate float64
	putErrRate float64

	mu    sync.Mutex
	state uint64
	c     StoreCounters
}

// NewFlakyStore wraps inner; getErrRate and putErrRate are probabilities in
// [0,1] drawn from a stream seeded by seed.
func NewFlakyStore(inner farm.Store, seed uint64, getErrRate, putErrRate float64) *FlakyStore {
	return &FlakyStore{inner: inner, getErrRate: getErrRate, putErrRate: putErrRate, state: seed}
}

// chance mirrors Transport.chance (caller holds mu).
func (s *FlakyStore) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return float64((z^(z>>31))>>11)/(1<<53) < p
}

// Counters returns a snapshot of the injection tallies.
func (s *FlakyStore) Counters() StoreCounters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c
}

// Get implements farm.Store.
func (s *FlakyStore) Get(key string) (*cpelide.Report, bool, error) {
	s.mu.Lock()
	fail := s.chance(s.getErrRate)
	if fail {
		s.c.GetErrs++
	} else {
		s.c.Passed++
	}
	s.mu.Unlock()
	if fail {
		return nil, false, fmt.Errorf("chaos: injected store read error for %s", key)
	}
	return s.inner.Get(key)
}

// Put implements farm.Store.
func (s *FlakyStore) Put(key string, rep *cpelide.Report) error {
	s.mu.Lock()
	fail := s.chance(s.putErrRate)
	if fail {
		s.c.PutErrs++
	} else {
		s.c.Passed++
	}
	s.mu.Unlock()
	if fail {
		return fmt.Errorf("chaos: injected store write error for %s", key)
	}
	return s.inner.Put(key, rep)
}
