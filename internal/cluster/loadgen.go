package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/server"
)

// MixEntry is one weighted element of a load mix: which workload to submit,
// under which protocol, and how often relative to the other entries.
type MixEntry struct {
	Workload string `json:"workload"`
	Protocol string `json:"protocol,omitempty"`
	Weight   int    `json:"weight"`
}

// ParseMix parses a load-mix spec: comma-separated
// "workload[/protocol][=weight]" entries, e.g.
// "square=3,pathfinder/hmg=1,btree/cpelide". Omitted protocol means
// cpelide; omitted weight means 1.
func ParseMix(s string) ([]MixEntry, error) {
	var mix []MixEntry
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		e := MixEntry{Protocol: "cpelide", Weight: 1}
		if at := strings.IndexByte(part, '='); at >= 0 {
			w, err := strconv.Atoi(part[at+1:])
			if err != nil || w <= 0 {
				return nil, fmt.Errorf("loadgen: bad weight in %q", part)
			}
			e.Weight = w
			part = part[:at]
		}
		if at := strings.IndexByte(part, '/'); at >= 0 {
			e.Protocol = part[at+1:]
			part = part[:at]
		}
		if part == "" {
			return nil, fmt.Errorf("loadgen: empty workload in mix")
		}
		e.Workload = part
		mix = append(mix, e)
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("loadgen: empty mix")
	}
	return mix, nil
}

// Campaign describes one load-generation run against a server or
// coordinator URL. The zero value of every tunable has a usable default.
type Campaign struct {
	BaseURL string
	// Jobs is the total number of submissions (default 100).
	Jobs int
	// Distinct bounds the number of distinct job bodies; submissions beyond
	// it repeat earlier bodies, exercising dedup and caches (default Jobs).
	Distinct int
	// Concurrency is the number of parallel clients (default 8).
	Concurrency int
	// Scale is the base workload scale (default 0.05); each distinct body
	// perturbs it slightly so content hashes differ.
	Scale float64
	// Mix is the weighted workload/protocol mix (default square/cpelide).
	Mix []MixEntry
	// Seed makes the submission schedule reproducible.
	Seed int64
	// PollInterval paces status polls when the server sends no Retry-After
	// (default 25ms).
	PollInterval time.Duration
	// JobTimeout bounds one job's submit-to-result wait (default 120s);
	// a job that exceeds it counts as lost.
	JobTimeout time.Duration
	// RetryBaseDelay is the first backoff after a transient transport error
	// (connection refused/reset while a coordinator restarts); consecutive
	// errors back off exponentially with full jitter (default 50ms).
	RetryBaseDelay time.Duration
	// RetryMaxDelay caps the transient-error backoff (default 2s), so a
	// coordinator bounce delays a campaign instead of failing it while the
	// client never hammers a recovering endpoint.
	RetryMaxDelay time.Duration
	// Client is the HTTP client (default http.DefaultClient).
	Client *http.Client
}

// Result summarizes a campaign. Latencies are exact percentiles over every
// completed job's submit-to-result wall time.
type Result struct {
	Jobs      int `json:"jobs"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"` // job executed and reported an error
	Lost      int `json:"lost"`   // never completed within JobTimeout
	Resubmits int `json:"resubmits"`
	// TransientRetries counts transport errors (refused/reset connections)
	// absorbed by backoff instead of failing a job.
	TransientRetries int `json:"transient_retries"`

	ElapsedMS     float64 `json:"elapsed_ms"`
	ThroughputJPS float64 `json:"throughput_jps"`
	P50MS         float64 `json:"p50_ms"`
	P90MS         float64 `json:"p90_ms"`
	P99MS         float64 `json:"p99_ms"`

	// Cache behavior over the campaign window, from /v1/stats deltas.
	CacheHitRate float64 `json:"cache_hit_rate"`
	CacheHits    uint64  `json:"cache_hits"`
	DedupWaits   uint64  `json:"dedup_waits"`
	StoreHits    uint64  `json:"store_hits"`
	Runs         uint64  `json:"runs"`
}

// jobSpec is one distinct request body and its precomputed JSON.
type jobSpec struct {
	body []byte
}

// specs materializes the campaign's distinct job bodies deterministically
// from the seed: mix entries are drawn by weight, scales perturbed per body.
func (c Campaign) specs() ([]jobSpec, error) {
	mix := c.Mix
	if len(mix) == 0 {
		mix = []MixEntry{{Workload: "square", Protocol: "cpelide", Weight: 1}}
	}
	total := 0
	for _, e := range mix {
		total += e.Weight
	}
	rng := rand.New(rand.NewSource(c.Seed))
	out := make([]jobSpec, c.Distinct)
	for i := range out {
		pick := rng.Intn(total)
		var e MixEntry
		for _, cand := range mix {
			if pick < cand.Weight {
				e = cand
				break
			}
			pick -= cand.Weight
		}
		req := server.JobRequest{
			Workload: e.Workload,
			Protocol: e.Protocol,
			// Perturb the scale so every distinct body hashes differently
			// while costing roughly the same to simulate.
			Scale: c.Scale * (1 + float64(i)*1e-4),
		}
		body, err := json.Marshal(req)
		if err != nil {
			return nil, fmt.Errorf("loadgen: marshal job spec %d: %w", i, err)
		}
		out[i] = jobSpec{body: body}
	}
	return out, nil
}

// Run executes the campaign and reports aggregate latency, throughput, and
// cache behavior. It only returns an error when the campaign cannot run at
// all (bad options, unreachable stats endpoint); lost jobs are data, in
// Result.Lost, not an error.
func (c Campaign) Run(ctx context.Context) (*Result, error) {
	if c.BaseURL == "" {
		return nil, fmt.Errorf("loadgen: BaseURL required")
	}
	if c.Jobs <= 0 {
		c.Jobs = 100
	}
	if c.Distinct <= 0 || c.Distinct > c.Jobs {
		c.Distinct = c.Jobs
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.Scale == 0 {
		c.Scale = 0.05
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 25 * time.Millisecond
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 120 * time.Second
	}
	if c.RetryBaseDelay <= 0 {
		c.RetryBaseDelay = 50 * time.Millisecond
	}
	if c.RetryMaxDelay <= 0 {
		c.RetryMaxDelay = 2 * time.Second
	}
	if c.Client == nil {
		c.Client = http.DefaultClient
	}

	before, err := c.fetchStats(ctx)
	if err != nil {
		return nil, fmt.Errorf("loadgen: pre-campaign stats: %w", err)
	}

	specs, err := c.specs()
	if err != nil {
		return nil, err
	}
	// Submission order interleaves the distinct bodies (i % Distinct covers
	// every body) and repeats wrap around, shuffled for burstiness.
	order := make([]int, c.Jobs)
	for i := range order {
		order[i] = i % c.Distinct
	}
	rand.New(rand.NewSource(c.Seed+1)).Shuffle(len(order), func(i, j int) {
		order[i], order[j] = order[j], order[i]
	})

	var (
		mu        sync.Mutex
		latencies []time.Duration
		res       = Result{Jobs: c.Jobs}
	)
	idx := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < c.Concurrency; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				lat, resubmits, retries, outcome := c.driveJob(ctx, specs[order[i]].body)
				mu.Lock()
				res.Resubmits += resubmits
				res.TransientRetries += retries
				switch outcome {
				case outcomeDone:
					res.Completed++
					latencies = append(latencies, lat)
				case outcomeFailed:
					res.Failed++
				default:
					res.Lost++
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < c.Jobs; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			// Stop feeding; jobs not handed out count as lost below.
			i = c.Jobs
		}
	}
	close(idx)
	wg.Wait()
	elapsed := time.Since(start)

	res.Lost = c.Jobs - res.Completed - res.Failed
	res.ElapsedMS = float64(elapsed.Microseconds()) / 1e3
	if elapsed > 0 {
		res.ThroughputJPS = float64(res.Completed) / elapsed.Seconds()
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) float64 {
		if len(latencies) == 0 {
			return 0
		}
		k := int(p * float64(len(latencies)-1))
		return float64(latencies[k].Microseconds()) / 1e3
	}
	res.P50MS, res.P90MS, res.P99MS = pct(0.50), pct(0.90), pct(0.99)

	if after, err := c.fetchStats(ctx); err == nil && before != nil {
		res.CacheHits = after.Farm.CacheHits - before.Farm.CacheHits
		res.DedupWaits = after.Farm.DedupWaits - before.Farm.DedupWaits
		res.StoreHits = after.Farm.StoreHits - before.Farm.StoreHits
		res.Runs = after.Farm.Runs - before.Farm.Runs
		if jobs := after.Farm.Jobs - before.Farm.Jobs; jobs > 0 {
			res.CacheHitRate = float64(res.CacheHits+res.DedupWaits+res.StoreHits) / float64(jobs)
		}
	}
	return &res, nil
}

type jobOutcome int

const (
	outcomeLost jobOutcome = iota
	outcomeDone
	outcomeFailed
)

// driveJob pushes one body through submit -> poll -> result, resubmitting
// on 404 (the cluster lost track, e.g. across a coordinator restart),
// honoring Retry-After on backpressure, and absorbing transient transport
// errors — a refused or reset connection while the coordinator restarts —
// with capped full-jitter backoff rather than losing the job.
func (c Campaign) driveJob(ctx context.Context, body []byte) (time.Duration, int, int, jobOutcome) {
	ctx, cancel := context.WithTimeout(ctx, c.JobTimeout)
	defer cancel()
	start := time.Now()
	resubmits := -1 // the first submit is not a resubmit
	retries := 0    // transient transport errors absorbed
	errStreak := 0  // consecutive transport errors, drives the backoff

	id := ""
	for {
		// (Re)submit until accepted.
		for {
			resubmits++
			code, sr, retryAfter, err := c.postJob(ctx, body)
			if err != nil {
				if ctx.Err() != nil {
					return 0, max(resubmits, 0), retries, outcomeLost
				}
				retries++
				errStreak++
				c.backoff(ctx, errStreak)
				continue
			}
			errStreak = 0
			if code == http.StatusAccepted || code == http.StatusOK {
				id = sr.ID
				break
			}
			// 429/503: back off as told and try again.
			c.sleep(ctx, retryAfter)
			if ctx.Err() != nil {
				return 0, max(resubmits, 0), retries, outcomeLost
			}
		}

		// Poll the result endpoint to completion.
		for {
			code, rep, retryAfter, err := c.getResult(ctx, id)
			if err != nil {
				if ctx.Err() != nil {
					return 0, max(resubmits, 0), retries, outcomeLost
				}
				retries++
				errStreak++
				c.backoff(ctx, errStreak)
				continue
			}
			errStreak = 0
			switch code {
			case http.StatusOK:
				if len(rep) == 0 {
					return 0, max(resubmits, 0), retries, outcomeFailed
				}
				return time.Since(start), max(resubmits, 0), retries, outcomeDone
			case http.StatusAccepted:
				c.sleep(ctx, retryAfter)
			case http.StatusNotFound:
				// The job fell out of the cluster's memory; resubmit it.
				goto resubmit
			case http.StatusInternalServerError:
				return 0, max(resubmits, 0), retries, outcomeFailed
			default:
				c.sleep(ctx, retryAfter)
			}
			if ctx.Err() != nil {
				return 0, max(resubmits, 0), retries, outcomeLost
			}
		}
	resubmit:
	}
}

// sleep waits for d (or PollInterval when d is zero) unless ctx ends first.
func (c Campaign) sleep(ctx context.Context, d time.Duration) {
	if d <= 0 {
		d = c.PollInterval
	}
	select {
	case <-ctx.Done():
	case <-time.After(d):
	}
}

// backoff sleeps a full-jitter exponential delay for the streak-th
// consecutive transport error: uniform in (0, min(base<<(streak-1), max)].
func (c Campaign) backoff(ctx context.Context, streak int) {
	delay := c.RetryBaseDelay
	for i := 1; i < streak && delay < c.RetryMaxDelay; i++ {
		delay <<= 1
	}
	if delay > c.RetryMaxDelay {
		delay = c.RetryMaxDelay
	}
	c.sleep(ctx, time.Duration(rand.Int63n(int64(delay))+1))
}

func (c Campaign) postJob(ctx context.Context, body []byte) (int, server.StatusResponse, time.Duration, error) {
	var sr server.StatusResponse
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return 0, sr, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.Client.Do(req)
	if err != nil {
		return 0, sr, 0, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxBody))
	if err != nil {
		return 0, sr, 0, err
	}
	_ = json.Unmarshal(b, &sr)
	return resp.StatusCode, sr, retryAfter(resp), nil
}

// getResult returns the raw result body on 200 (the report JSON).
func (c Campaign) getResult(ctx context.Context, id string) (int, []byte, time.Duration, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.BaseURL+"/v1/jobs/"+id+"/result", nil)
	if err != nil {
		return 0, nil, 0, err
	}
	resp, err := c.Client.Do(req)
	if err != nil {
		return 0, nil, 0, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxBody))
	if err != nil {
		return 0, nil, 0, err
	}
	return resp.StatusCode, b, retryAfter(resp), nil
}

func retryAfter(resp *http.Response) time.Duration {
	if v := resp.Header.Get("Retry-After"); v != "" {
		if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return 0
}

// fetchStats reads /v1/stats in the worker schema; the coordinator's
// aggregate endpoint embeds the same shape.
func (c Campaign) fetchStats(ctx context.Context) (*server.StatsResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("stats endpoint answered %d", resp.StatusCode)
	}
	var sr server.StatsResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxBody)).Decode(&sr); err != nil {
		return nil, err
	}
	return &sr, nil
}
