package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/server"
)

// fakeWorker is a stub cpelide-server: it accepts jobs, completes them
// instantly, and serves results, so coordinator tests run in microseconds.
type fakeWorker struct {
	name string
	ts   *httptest.Server

	mu   sync.Mutex
	jobs map[string]json.RawMessage // id -> canned "report"
}

func newFakeWorker(t *testing.T, name string) *fakeWorker {
	t.Helper()
	fw := &fakeWorker{name: name, jobs: make(map[string]json.RawMessage)}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		var req server.JobRequest
		if err := json.Unmarshal(body, &req); err != nil {
			server.WriteError(w, http.StatusBadRequest, server.ErrCodeBadRequest, "%v", err)
			return
		}
		job, err := req.Job()
		if err != nil {
			server.WriteError(w, http.StatusBadRequest, server.ErrCodeBadRequest, "%v", err)
			return
		}
		id, err := job.Key()
		if err != nil {
			server.WriteError(w, http.StatusBadRequest, server.ErrCodeBadRequest, "%v", err)
			return
		}
		fw.mu.Lock()
		fw.jobs[id] = json.RawMessage(fmt.Sprintf(`{"workload":%q,"served_by":%q}`, req.Workload, name))
		fw.mu.Unlock()
		server.WriteJSON(w, http.StatusAccepted, server.StatusResponse{ID: id, Status: "queued"})
	})
	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		fw.mu.Lock()
		rep, ok := fw.jobs[r.PathValue("id")]
		fw.mu.Unlock()
		if !ok {
			server.WriteError(w, http.StatusNotFound, server.ErrCodeNotFound, "unknown job")
			return
		}
		server.WriteJSON(w, http.StatusOK, rep)
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		fw.mu.Lock()
		_, ok := fw.jobs[id]
		fw.mu.Unlock()
		if !ok {
			server.WriteError(w, http.StatusNotFound, server.ErrCodeNotFound, "unknown job")
			return
		}
		server.WriteJSON(w, http.StatusOK, server.StatusResponse{ID: id, Status: "done"})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		server.WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	fw.ts = httptest.NewServer(mux)
	t.Cleanup(fw.ts.Close)
	return fw
}

func (fw *fakeWorker) count() int {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	return len(fw.jobs)
}

// testCoordinator builds a coordinator with a fast health loop and its HTTP
// front end.
func testCoordinator(t *testing.T, reg *metrics.Registry) (*Coordinator, *httptest.Server) {
	t.Helper()
	c, err := NewCoordinator(Options{
		HealthInterval: 20 * time.Millisecond,
		FailThreshold:  2,
		ProxyTimeout:   2 * time.Second,
		Metrics:        reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(ts.Close)
	return c, ts
}

func submitJob(t *testing.T, baseURL string, i int) (string, int) {
	t.Helper()
	body := fmt.Sprintf(`{"workload":"square","scale":%g,"protocol":"cpelide"}`, 0.05+float64(i)*1e-4)
	resp, err := http.Post(baseURL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr server.StatusResponse
	_ = json.NewDecoder(resp.Body).Decode(&sr)
	return sr.ID, resp.StatusCode
}

// TestRoutingIsConsistentAndSpread: the same job always lands on the same
// worker, and distinct jobs spread across all of them.
func TestRoutingIsConsistentAndSpread(t *testing.T) {
	c, ts := testCoordinator(t, nil)
	workers := []*fakeWorker{
		newFakeWorker(t, "w1"), newFakeWorker(t, "w2"), newFakeWorker(t, "w3"),
	}
	for _, fw := range workers {
		if err := c.Register(Worker{Name: fw.name, URL: fw.ts.URL}); err != nil {
			t.Fatal(err)
		}
	}

	const jobs = 60
	owner := make(map[string]string) // id -> worker that holds it
	for i := 0; i < jobs; i++ {
		id, code := submitJob(t, ts.URL, i)
		if code != http.StatusAccepted {
			t.Fatalf("job %d: status %d", i, code)
		}
		for _, fw := range workers {
			fw.mu.Lock()
			_, here := fw.jobs[id]
			fw.mu.Unlock()
			if here {
				if prev, seen := owner[id]; seen && prev != fw.name {
					t.Fatalf("job %s on both %s and %s", id, prev, fw.name)
				}
				owner[id] = fw.name
			}
		}
	}
	// Resubmitting everything must not move anything.
	counts := map[string]int{}
	for _, fw := range workers {
		counts[fw.name] = fw.count()
	}
	for i := 0; i < jobs; i++ {
		submitJob(t, ts.URL, i)
	}
	for _, fw := range workers {
		if fw.count() != counts[fw.name] {
			t.Errorf("%s: job count changed on resubmit: %d -> %d", fw.name, counts[fw.name], fw.count())
		}
		if counts[fw.name] == 0 {
			t.Errorf("%s received no jobs; routing is not spreading", fw.name)
		}
	}
}

// TestNoWorkers: submissions without any registered worker fail with 503 in
// the standard error schema.
func TestNoWorkers(t *testing.T) {
	_, ts := testCoordinator(t, nil)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"workload":"square","scale":0.05}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	var e server.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Code == "" {
		t.Fatalf("error schema: %+v err=%v", e, err)
	}
	// Health probe agrees.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz = %d, want 503", hresp.StatusCode)
	}
}

// TestWorkerDeathReroutes kills one of three workers and verifies its jobs
// are replayed onto survivors: every job's result stays fetchable through
// the coordinator and the reroute counters move.
func TestWorkerDeathReroutes(t *testing.T) {
	reg := metrics.NewRegistry()
	c, ts := testCoordinator(t, reg)
	workers := []*fakeWorker{
		newFakeWorker(t, "w1"), newFakeWorker(t, "w2"), newFakeWorker(t, "w3"),
	}
	for _, fw := range workers {
		if err := c.Register(Worker{Name: fw.name, URL: fw.ts.URL}); err != nil {
			t.Fatal(err)
		}
	}

	const jobs = 45
	ids := make([]string, jobs)
	for i := range ids {
		id, code := submitJob(t, ts.URL, i)
		if code != http.StatusAccepted {
			t.Fatalf("job %d: status %d", i, code)
		}
		ids[i] = id
	}

	// Kill the worker holding the most jobs.
	victim := workers[0]
	for _, fw := range workers[1:] {
		if fw.count() > victim.count() {
			victim = fw
		}
	}
	lost := victim.count()
	if lost == 0 {
		t.Fatal("victim held no jobs; test cannot exercise rerouting")
	}
	victim.ts.Close()

	// Wait for the health loop to notice (2 probes at 20ms, plus slack).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("health loop never marked the victim dead")
		}
		healthy := 0
		for _, ws := range c.Workers() {
			if ws.Healthy {
				healthy++
			}
		}
		if healthy == 2 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Every job — including the victim's — must still resolve via the
	// coordinator. Rerouted jobs may briefly answer 202 while replaying.
	for _, id := range ids {
		var ok bool
		for attempt := 0; attempt < 50; attempt++ {
			resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result")
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				if bytes.Contains(body, []byte(victim.name)) {
					t.Fatalf("job %s still served by dead worker %s", id, victim.name)
				}
				ok = true
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		if !ok {
			t.Fatalf("job %s lost after worker death", id)
		}
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	exposition, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if v, ok := metrics.ParseValue(string(exposition), "cluster_reroutes_total"); !ok || v == 0 {
		t.Errorf("cluster_reroutes_total = %v (ok=%v), want > 0", v, ok)
	}
	if v, ok := metrics.ParseValue(string(exposition), "cluster_workers_healthy"); !ok || v != 2 {
		t.Errorf("cluster_workers_healthy = %v (ok=%v), want 2", v, ok)
	}
	if v, ok := metrics.ParseValue(string(exposition), "cluster_maglev_rebuilds_total"); !ok || v < 4 {
		t.Errorf("cluster_maglev_rebuilds_total = %v (ok=%v), want >= 4 (3 registrations + death)", v, ok)
	}
}

// TestDeregisterMovesJobs: a clean deregistration replays the departing
// worker's jobs immediately, without waiting for health probes.
func TestDeregisterMovesJobs(t *testing.T) {
	c, ts := testCoordinator(t, nil)
	w1, w2 := newFakeWorker(t, "w1"), newFakeWorker(t, "w2")
	for _, fw := range []*fakeWorker{w1, w2} {
		if err := c.Register(Worker{Name: fw.name, URL: fw.ts.URL}); err != nil {
			t.Fatal(err)
		}
	}
	const jobs = 20
	for i := 0; i < jobs; i++ {
		submitJob(t, ts.URL, i)
	}
	if w1.count() == 0 || w2.count() == 0 {
		t.Fatalf("expected both workers to hold jobs, got %d/%d", w1.count(), w2.count())
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/workers/w1", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deregister: status %d", resp.StatusCode)
	}
	if got := w2.count(); got != jobs {
		t.Fatalf("after deregister w2 holds %d jobs, want all %d", got, jobs)
	}
}

func TestParseMix(t *testing.T) {
	mix, err := ParseMix("square=3, pathfinder/hmg=2 ,btree")
	if err != nil {
		t.Fatal(err)
	}
	want := []MixEntry{
		{Workload: "square", Protocol: "cpelide", Weight: 3},
		{Workload: "pathfinder", Protocol: "hmg", Weight: 2},
		{Workload: "btree", Protocol: "cpelide", Weight: 1},
	}
	if len(mix) != len(want) {
		t.Fatalf("got %d entries, want %d", len(mix), len(want))
	}
	for i := range want {
		if mix[i] != want[i] {
			t.Errorf("entry %d = %+v, want %+v", i, mix[i], want[i])
		}
	}
	for _, bad := range []string{"", "square=0", "square=x", "/hmg", " , "} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) accepted", bad)
		}
	}
}

func TestRouteKey(t *testing.T) {
	a := routeKey("00000000000000ff" + strings.Repeat("0", 48))
	if a != 0xff {
		t.Fatalf("routeKey hex prefix = %#x, want 0xff", a)
	}
	// Non-hex IDs still fold deterministically.
	if routeKey("not-a-hash") != routeKey("not-a-hash") {
		t.Fatal("non-hex fold is unstable")
	}
	if routeKey("not-a-hash") == routeKey("not-a-hash2") {
		t.Fatal("non-hex fold collides trivially")
	}
}
