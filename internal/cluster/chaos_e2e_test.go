package cluster

import (
	"bytes"
	"context"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster/chaos"
	"repro/internal/cluster/diskstore"
	"repro/internal/cluster/journal"
	"repro/internal/metrics"
)

// coordServer runs a coordinator on a real TCP listener so the test can
// kill it and bind a successor to the same address — the client-visible
// shape of a coordinator crash and restart.
type coordServer struct {
	coord *Coordinator
	srv   *http.Server
	addr  string
}

func startCoord(t *testing.T, addr string, opts Options) *coordServer {
	t.Helper()
	coord, err := NewCoordinator(opts)
	if err != nil {
		t.Fatal(err)
	}
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	var ln net.Listener
	// The predecessor's sockets may linger briefly after Close; retry the
	// bind rather than flaking.
	for deadline := time.Now().Add(10 * time.Second); ; {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("bind %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	cs := &coordServer{
		coord: coord,
		srv:   &http.Server{Handler: coord.Handler()},
		addr:  ln.Addr().String(),
	}
	go cs.srv.Serve(ln)
	return cs
}

func (cs *coordServer) url() string { return "http://" + cs.addr }

// kill drops the listener and every active connection, then stops the
// coordinator. The journal is left exactly as the crash instant had it —
// appends are synced per record, so the successor replays the same state a
// SIGKILL would leave behind.
func (cs *coordServer) kill() {
	cs.srv.Close()
	cs.coord.Close()
}

// TestChaosCoordinatorCrashRecovery is the tentpole scenario: kill the
// coordinator mid-campaign and restart it over the same journal at the same
// address. The campaign's transient-error backoff rides out the outage, the
// journal replays worker membership and unfinished jobs, and not one of the
// 200 submissions is lost.
func TestChaosCoordinatorCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos e2e is not a -short test")
	}
	storeDir := t.TempDir()
	jpath := filepath.Join(t.TempDir(), "coordinator.journal")

	jnl, err := journal.Open(jpath, journal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	cs1 := startCoord(t, "", Options{
		HealthInterval: 20 * time.Millisecond,
		FailThreshold:  2,
		ProxyTimeout:   5 * time.Second,
		Metrics:        metrics.NewRegistry(),
		Journal:        jnl,
	})
	workers := []*e2eWorker{
		newE2EWorker(t, "w1", storeDir),
		newE2EWorker(t, "w2", storeDir),
		newE2EWorker(t, "w3", storeDir),
	}
	for _, w := range workers {
		if err := cs1.coord.Register(Worker{Name: w.name, URL: w.ts.URL}); err != nil {
			t.Fatal(err)
		}
	}

	campaign := Campaign{
		BaseURL:        cs1.url(),
		Jobs:           200,
		Distinct:       100,
		Concurrency:    16,
		Scale:          0.05,
		Seed:           42,
		PollInterval:   10 * time.Millisecond,
		JobTimeout:     60 * time.Second,
		RetryBaseDelay: 20 * time.Millisecond,
		RetryMaxDelay:  200 * time.Millisecond,
	}
	type campaignOut struct {
		res *Result
		err error
	}
	done := make(chan campaignOut, 1)
	go func() {
		res, err := campaign.Run(context.Background())
		done <- campaignOut{res, err}
	}()

	// Kill the coordinator once the campaign is visibly in flight.
	killDeadline := time.Now().Add(30 * time.Second)
	for clusterJobs(t, cs1.url()) < 40 {
		if time.Now().After(killDeadline) {
			t.Fatal("campaign never reached 40 jobs; cannot kill mid-run")
		}
		time.Sleep(10 * time.Millisecond)
	}
	cs1.kill()
	t.Log("killed coordinator mid-campaign")

	// Restart over the same journal at the same address. Workers do not
	// re-register: membership comes back from the journal.
	jnl2, err := journal.Open(jpath, journal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	recovered := len(jnl2.PendingJobs())
	if recovered == 0 {
		t.Error("journal recovered 0 unfinished jobs from a mid-flight kill")
	}
	reg2 := metrics.NewRegistry()
	cs2 := startCoord(t, cs1.addr, Options{
		HealthInterval: 20 * time.Millisecond,
		FailThreshold:  2,
		ProxyTimeout:   5 * time.Second,
		Metrics:        reg2,
		Journal:        jnl2,
	})
	defer cs2.kill()
	if got := len(cs2.coord.Workers()); got != 3 {
		t.Errorf("recovered %d workers from journal, want 3", got)
	}
	t.Logf("coordinator restarted: %d unfinished jobs, %d workers recovered",
		recovered, len(cs2.coord.Workers()))

	out := <-done
	if out.err != nil {
		t.Fatalf("campaign: %v", out.err)
	}
	res := out.res
	if res.Lost != 0 || res.Failed != 0 || res.Completed != 200 {
		t.Fatalf("campaign lost jobs across the coordinator crash: %+v", res)
	}
	if res.TransientRetries == 0 {
		t.Error("campaign saw no transient errors despite the coordinator outage")
	}
	t.Logf("campaign: %.1f jobs/s, p99 %.1fms, resubmits %d, transient retries %d",
		res.ThroughputJPS, res.P99MS, res.Resubmits, res.TransientRetries)

	expo := scrape(t, cs2.url())
	if v, ok := metrics.ParseValue(expo, "cluster_journal_recovered_jobs"); !ok || v == 0 {
		t.Errorf("cluster_journal_recovered_jobs = %v (ok=%v), want > 0", v, ok)
	}
	if v, ok := metrics.ParseValue(expo, "cluster_journal_errors_total"); !ok || v != 0 {
		t.Errorf("cluster_journal_errors_total = %v (ok=%v), want 0", v, ok)
	}
}

func scrape(t *testing.T, baseURL string) string {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestChaosStoreCorruption corrupts a stored report on disk and proves the
// integrity envelope turns it into a recompute, never a wrong answer: the
// corrupt file is quarantined, exactly one job re-simulates, and the
// recomputed bytes are identical to the original result.
func TestChaosStoreCorruption(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos e2e is not a -short test")
	}
	storeDir := t.TempDir()

	// Seed the store through one worker and record every result's bytes.
	w1 := newE2EWorker(t, "w1", storeDir)
	campaign := Campaign{
		BaseURL:      w1.ts.URL,
		Jobs:         20,
		Distinct:     20,
		Concurrency:  8,
		Scale:        0.05,
		Seed:         7,
		PollInterval: 5 * time.Millisecond,
		JobTimeout:   60 * time.Second,
	}
	res, err := campaign.Run(context.Background())
	if err != nil || res.Completed != 20 {
		t.Fatalf("seed campaign: res=%+v err=%v", res, err)
	}

	st, err := diskstore.Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	keys, err := st.RecentKeys(0)
	if err != nil || len(keys) != 20 {
		t.Fatalf("stored %d keys, err=%v, want 20", len(keys), err)
	}
	victim := keys[3]
	clean := fetchResult(t, w1.ts.URL, victim)

	// Flip one byte inside the victim's report payload.
	path := filepath.Join(storeDir, victim[:2], victim+".json")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	i := bytes.Index(b, []byte(`"Cycles":`))
	if i < 0 {
		t.Fatalf("no Cycles field in %s", path)
	}
	b[i+len(`"Cycles":`)] ^= 0x01
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	// A fresh worker over the same store must detect the corruption on its
	// first read, quarantine the file, and recompute — byte-identically.
	w2 := newE2EWorker(t, "w2", storeDir)
	campaign.BaseURL = w2.ts.URL
	res2, err := campaign.Run(context.Background())
	if err != nil || res2.Completed != 20 || res2.Lost != 0 || res2.Failed != 0 {
		t.Fatalf("corruption campaign: res=%+v err=%v", res2, err)
	}
	c := w2.farm.Counters()
	if c.StoreErrors != 1 {
		t.Errorf("StoreErrors = %d, want 1 (the corrupted entry)", c.StoreErrors)
	}
	if c.Runs != 1 {
		t.Errorf("Runs = %d, want 1 (only the corrupted job recomputes)", c.Runs)
	}
	if n, err := st.QuarantineCount(); err != nil || n != 1 {
		t.Errorf("quarantine count = %d err=%v, want 1", n, err)
	}
	recomputed := fetchResult(t, w2.ts.URL, victim)
	if !bytes.Equal(clean, recomputed) {
		t.Errorf("recomputed result differs from the original:\n%s\n%s", clean, recomputed)
	}
	// The recompute repaired the store: a third worker serves it cleanly.
	w3 := newE2EWorker(t, "w3", storeDir)
	campaign.BaseURL = w3.ts.URL
	res3, err := campaign.Run(context.Background())
	if err != nil || res3.Completed != 20 {
		t.Fatalf("repair campaign: res=%+v err=%v", res3, err)
	}
	if c := w3.farm.Counters(); c.Runs != 0 || c.StoreErrors != 0 {
		t.Errorf("post-repair counters = %+v, want Runs=0 StoreErrors=0", c)
	}
}

func fetchResult(t *testing.T, baseURL, id string) []byte {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(baseURL + "/v1/jobs/" + id + "/result")
		if err != nil {
			t.Fatal(err)
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err == nil && resp.StatusCode == http.StatusOK {
			return b
		}
		if time.Now().After(deadline) {
			t.Fatalf("result %s never became ready (last: %d %v)", id, resp.StatusCode, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestChaosConduitCampaign runs a campaign through a fault-injecting
// transport — drops, delays, truncations, 5xx, plus a mid-run partition of
// one worker — and requires zero lost jobs and zero wrong bytes: every
// fault must degrade to a retry, reroute, or recompute.
func TestChaosConduitCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos e2e is not a -short test")
	}
	storeDir := t.TempDir()
	conduit := chaos.NewTransport(nil, chaos.Config{
		Seed:         99,
		DropRate:     0.03,
		DelayRate:    0.05,
		Delay:        5 * time.Millisecond,
		TruncateRate: 0.03,
		Err5xxRate:   0.03,
	})
	reg := metrics.NewRegistry()
	cs := startCoord(t, "", Options{
		HealthInterval: 25 * time.Millisecond,
		FailThreshold:  3,
		ProxyTimeout:   5 * time.Second,
		Metrics:        reg,
		Transport:      conduit,
	})
	defer cs.kill()
	workers := []*e2eWorker{
		newE2EWorker(t, "w1", storeDir),
		newE2EWorker(t, "w2", storeDir),
		newE2EWorker(t, "w3", storeDir),
	}
	for _, w := range workers {
		if err := cs.coord.Register(Worker{Name: w.name, URL: w.ts.URL}); err != nil {
			t.Fatal(err)
		}
	}

	campaign := Campaign{
		BaseURL:        cs.url(),
		Jobs:           150,
		Distinct:       75,
		Concurrency:    12,
		Scale:          0.05,
		Seed:           11,
		PollInterval:   10 * time.Millisecond,
		JobTimeout:     60 * time.Second,
		RetryBaseDelay: 10 * time.Millisecond,
		RetryMaxDelay:  100 * time.Millisecond,
	}
	type campaignOut struct {
		res *Result
		err error
	}
	done := make(chan campaignOut, 1)
	go func() {
		res, err := campaign.Run(context.Background())
		done <- campaignOut{res, err}
	}()

	// Partition one worker mid-campaign, then heal it.
	deadline := time.Now().Add(30 * time.Second)
	for clusterJobs(t, cs.url()) < 30 {
		if time.Now().After(deadline) {
			t.Fatal("campaign never reached 30 jobs; cannot partition mid-run")
		}
		time.Sleep(10 * time.Millisecond)
	}
	host := strings.TrimPrefix(workers[2].ts.URL, "http://")
	conduit.SetPartitioned(host, true)
	t.Log("partitioned w3")
	time.Sleep(300 * time.Millisecond)
	conduit.SetPartitioned(host, false)
	t.Log("healed w3")

	out := <-done
	if out.err != nil {
		t.Fatalf("campaign: %v", out.err)
	}
	res := out.res
	if res.Lost != 0 || res.Failed != 0 || res.Completed != 150 {
		t.Fatalf("campaign lost jobs under chaos: %+v", res)
	}
	cc := conduit.Counters()
	if cc.Drops == 0 || cc.Errs5xx == 0 || cc.Partitions == 0 {
		t.Errorf("conduit barely fired: %+v", cc)
	}
	t.Logf("campaign: %.1f jobs/s, p99 %.1fms; conduit %+v", res.ThroughputJPS, res.P99MS, cc)

	// Determinism under chaos: every result must match a clean, fault-free
	// single-node run of the same distinct bodies (fresh store, recomputed
	// from scratch).
	cleanWorker := newE2EWorker(t, "clean", t.TempDir())
	cleanCampaign := campaign
	cleanCampaign.BaseURL = cleanWorker.ts.URL
	cleanRes, err := cleanCampaign.Run(context.Background())
	if err != nil || cleanRes.Completed != 150 {
		t.Fatalf("clean campaign: res=%+v err=%v", cleanRes, err)
	}
	st, err := diskstore.Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	keys, err := st.RecentKeys(0)
	if err != nil || len(keys) != 75 {
		t.Fatalf("chaos store has %d keys, err=%v, want 75", len(keys), err)
	}
	mismatches := 0
	for _, key := range keys[:10] { // spot-check a sample for byte identity
		chaosBytes := fetchResult(t, cs.url(), key)
		cleanBytes := fetchResult(t, cleanWorker.ts.URL, key)
		if !bytes.Equal(chaosBytes, cleanBytes) {
			mismatches++
			t.Errorf("result %s differs between chaos and clean runs", key[:12])
		}
	}
	if mismatches == 0 {
		t.Logf("10/10 spot-checked results byte-identical to the clean run")
	}
}

// TestChaosHedgedSubmit pins one worker to a long artificial submit delay:
// with hedging on, the coordinator re-issues slow submits to the next
// backend and the fast worker wins the race, keeping the campaign moving.
func TestChaosHedgedSubmit(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos e2e is not a -short test")
	}
	storeDir := t.TempDir()
	fast := newE2EWorker(t, "fast", storeDir)

	// A slow node: same farm surface, but every submit stalls far past the
	// hedge delay.
	slowInner := newE2EWorker(t, "slow", storeDir)
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/v1/jobs" {
			time.Sleep(150 * time.Millisecond)
		}
		slowInner.srv.Handler().ServeHTTP(w, r)
	}))
	defer slow.Close()

	reg := metrics.NewRegistry()
	cs := startCoord(t, "", Options{
		HealthInterval:  25 * time.Millisecond,
		FailThreshold:   3,
		ProxyTimeout:    5 * time.Second,
		Metrics:         reg,
		HedgeAfter:      30 * time.Millisecond,
		HedgePercentile: 0.99,
	})
	defer cs.kill()
	if err := cs.coord.Register(Worker{Name: "fast", URL: fast.ts.URL}); err != nil {
		t.Fatal(err)
	}
	if err := cs.coord.Register(Worker{Name: "slow", URL: slow.URL}); err != nil {
		t.Fatal(err)
	}

	campaign := Campaign{
		BaseURL:      cs.url(),
		Jobs:         40,
		Distinct:     40,
		Concurrency:  8,
		Scale:        0.05,
		Seed:         5,
		PollInterval: 10 * time.Millisecond,
		JobTimeout:   60 * time.Second,
	}
	res, err := campaign.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Lost != 0 || res.Failed != 0 || res.Completed != 40 {
		t.Fatalf("hedged campaign incomplete: %+v", res)
	}
	expo := scrape(t, cs.url())
	hedges, _ := metrics.ParseValue(expo, "cluster_hedges_total")
	wins, _ := metrics.ParseValue(expo, "cluster_hedge_wins_total")
	if hedges == 0 {
		t.Error("cluster_hedges_total = 0; the slow worker never triggered a hedge")
	}
	if wins == 0 {
		t.Error("cluster_hedge_wins_total = 0; hedges to the fast worker never won")
	}
	if wins > hedges {
		t.Errorf("hedge wins %v > hedges %v", wins, hedges)
	}
	t.Logf("hedges %v, wins %v, p99 %.1fms", hedges, wins, res.P99MS)
}
