package maglev

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

func mustNew(t *testing.T, m uint64) *Table {
	t.Helper()
	tab, err := New(m)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestTableSize(t *testing.T) {
	for _, m := range []uint64{SmallM, BigM, 1e9 + 7, 1e9 + 9} {
		if _, err := New(m); err != nil {
			t.Errorf("New(%d): %v, want prime accepted", m, err)
		}
	}
	for _, m := range []uint64{0, 1, 57, 1 << 60} {
		if _, err := New(m); !errors.Is(err, ErrNotPrime) {
			t.Errorf("New(%d): err=%v, want ErrNotPrime", m, err)
		}
	}
}

func TestBasicFunctionality(t *testing.T) {
	tab := mustNew(t, SmallM)

	if _, ok := tab.Lookup(42); ok {
		t.Fatal("empty table answered a lookup")
	}

	backends := make([]string, 6)
	for i := range backends {
		backends[i] = fmt.Sprintf("10.0.0.%d:8080", i)
	}
	tab.Add(backends[0])
	tab.Add(backends[1])
	tab.Add(backends[2])
	if _, err := tab.SetWeight(backends[3], 2); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.SetWeight(backends[3], 3); err != nil {
		t.Fatal(err)
	}
	tab.Add(backends[4])
	if _, err := tab.Remove(backends[4]); err != nil {
		t.Fatal(err)
	}
	tab.Add(backends[5])
	if _, err := tab.SetWeight(backends[5], 0); err != nil {
		t.Fatal(err)
	}

	// Four backends serve (0, 1, 2 at weight 1; 3 at weight 3); 4 was
	// removed and 5 is weighted out.
	rng := rand.New(rand.NewSource(42))
	freq := make(map[string]uint)
	for i := 0; i < 1e4; i++ {
		name, ok := tab.Lookup(rng.Uint64())
		if !ok {
			t.Fatal("lookup failed with live backends")
		}
		freq[name]++
	}
	if len(freq) != 4 {
		t.Fatalf("got %d serving backends (%v), want 4", len(freq), freq)
	}
	for i := 0; i < 4; i++ {
		if freq[backends[i]] == 0 {
			t.Errorf("backend %d got no traffic", i)
		}
	}
	// Weight 3 should draw roughly 3x a weight-1 backend's share: 3/6 of
	// the keys vs 1/6 each. Allow generous tolerance; Maglev balance error
	// is sub-1% but the key sample adds noise.
	heavy, light := float64(freq[backends[3]]), float64(freq[backends[0]])
	if ratio := heavy / light; ratio < 2.2 || ratio > 3.8 {
		t.Errorf("weight-3 backend drew %.2fx a weight-1 backend, want ~3x (freq %v)", ratio, freq)
	}

	if _, err := tab.Remove("never-added"); !errors.Is(err, ErrNoBackend) {
		t.Errorf("Remove(unknown): err=%v, want ErrNoBackend", err)
	}
	if _, err := tab.SetWeight(backends[0], -1); err == nil {
		t.Error("negative weight accepted")
	}
}

// TestMinimalDisruption is the cluster's cache-warmth contract (ISSUE 7
// acceptance): removing one of N backends must remap at most ~2/N of a
// 10k-key sample — the removed backend's own 1/N share plus a small
// reshuffle tail — never a full reshuffle.
func TestMinimalDisruption(t *testing.T) {
	for _, n := range []int{3, 5, 8} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			tab := mustNew(t, SmallM)
			for i := 0; i < n; i++ {
				tab.Add(fmt.Sprintf("worker-%d", i))
			}

			const samples = 10000
			rng := rand.New(rand.NewSource(7))
			keys := make([]uint64, samples)
			before := make([]string, samples)
			for i := range keys {
				keys[i] = rng.Uint64()
				before[i], _ = tab.Lookup(keys[i])
			}

			if _, err := tab.Remove("worker-0"); err != nil {
				t.Fatal(err)
			}
			moved := 0
			for i, k := range keys {
				after, ok := tab.Lookup(k)
				if !ok {
					t.Fatal("lookup failed after removal")
				}
				if after == "worker-0" {
					t.Fatal("removed backend still serving")
				}
				if after != before[i] {
					moved++
				}
			}
			frac := float64(moved) / samples
			if limit := 2.0 / float64(n); frac > limit {
				t.Errorf("removing 1 of %d backends remapped %.1f%% of keys, want <= %.1f%%",
					n, 100*frac, 100*limit)
			}
			// And at least the removed backend's share must have moved.
			if min := 0.5 / float64(n); frac < min {
				t.Errorf("removing 1 of %d backends remapped only %.1f%% of keys; its own share was ~%.1f%%",
					n, 100*frac, 100/float64(n))
			}
		})
	}
}

// TestDeterministicPopulation: the same backend set yields the same table
// regardless of mutation order, so every coordinator replica routes alike.
func TestDeterministicPopulation(t *testing.T) {
	a, b := mustNew(t, SmallM), mustNew(t, SmallM)
	a.Add("w1")
	a.Add("w2")
	if _, err := a.SetWeight("w3", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Apply(map[string]int{"w3": 2, "w1": 1, "w2": 1}); err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 5000; k++ {
		an, _ := a.Lookup(k)
		bn, _ := b.Lookup(k)
		if an != bn {
			t.Fatalf("key %d routes to %q vs %q under identical backend sets", k, an, bn)
		}
	}
}

// TestRemappedCount: mutators report slot churn so the coordinator can
// export it; adding a fresh backend to an empty table claims every slot.
func TestRemappedCount(t *testing.T) {
	tab := mustNew(t, SmallM)
	if got := tab.Add("solo"); got != SmallM {
		t.Fatalf("first Add remapped %d slots, want all %d", got, SmallM)
	}
	if got := tab.Add("solo"); got != 0 {
		t.Fatalf("re-Add remapped %d slots, want 0", got)
	}
	moved := tab.Add("pair")
	if moved == 0 || moved == SmallM {
		t.Fatalf("second Add remapped %d slots, want a proper subset", moved)
	}
	// Roughly half the slots should have moved to the new peer.
	if frac := float64(moved) / SmallM; frac < 0.35 || frac > 0.65 {
		t.Errorf("second Add moved %.1f%% of slots, want ~50%%", 100*frac)
	}
	if tab.Rebuilds() != 2 {
		t.Errorf("rebuilds=%d, want 2 (re-Add of an existing backend skips the rebuild)", tab.Rebuilds())
	}
}

func BenchmarkLookup(b *testing.B) {
	tab, err := New(SmallM)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		tab.Add(fmt.Sprintf("worker-%d", i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Lookup(uint64(i))
	}
}
