// Package maglev implements Maglev consistent hashing (Eisenbud et al.,
// NSDI 2016), the routing core of the experiment cluster: a fixed-size
// prime-length lookup table that maps 64-bit keys onto a weighted set of
// backends with near-perfect balance and minimal disruption when the set
// changes. Removing one of N backends remaps only the slots that backend
// owned — about 1/N of the key space plus a small reshuffle tail — so the
// cluster's content-addressed result caches stay warm across node churn.
//
// The table is deterministic: the same backend set (names and weights)
// always populates the same table, regardless of the order mutations were
// applied in. Backend names are hashed with FNV-1a to derive each backend's
// slot-preference permutation, and population walks backends in sorted-name
// order, giving a backend with weight w that many consecutive picks per
// round (the spike/maglev weighting scheme).
package maglev

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/big"
	"sort"
	"sync"
)

// SmallM and BigM are the conventional table sizes from the Maglev paper:
// primes roughly 100x the expected maximum backend count. SmallM suits test
// clusters; BigM keeps the balance error under 1% for hundreds of backends.
const (
	SmallM = 65537
	BigM   = 655373
)

// ErrNotPrime rejects a table size that is not prime (the permutation walk
// requires gcd(skip, M) == 1 for every skip, which primality guarantees).
var ErrNotPrime = errors.New("maglev: table size must be prime")

// ErrNoBackend marks lookups and mutations against an unknown or empty
// backend set.
var ErrNoBackend = errors.New("maglev: no such backend")

// Table is a weighted Maglev lookup table. All methods are safe for
// concurrent use; Lookup is lock-cheap (one RLock, one slice index).
type Table struct {
	mu       sync.RWMutex
	m        uint64
	weights  map[string]int
	names    []string // sorted keys of weights with weight > 0
	slots    []int32  // slot -> index into names; -1 when unpopulated
	rebuilds uint64
}

// New returns an empty table with m slots. m must be prime and at least 2.
func New(m uint64) (*Table, error) {
	if m < 2 || !big.NewInt(0).SetUint64(m).ProbablyPrime(0) {
		// ProbablyPrime(0) is exact for every uint64.
		return nil, fmt.Errorf("maglev: table size %d: %w", m, ErrNotPrime)
	}
	return &Table{m: m, weights: make(map[string]int)}, nil
}

// M returns the table size.
func (t *Table) M() uint64 { return t.m }

// Rebuilds returns how many times the lookup table has been repopulated.
func (t *Table) Rebuilds() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rebuilds
}

// Backends returns the current backend set as a name -> weight map copy.
func (t *Table) Backends() map[string]int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make(map[string]int, len(t.weights))
	for n, w := range t.weights {
		out[n] = w
	}
	return out
}

// Add registers name with weight 1 (a no-op if it is already present) and
// returns how many table slots changed owner.
func (t *Table) Add(name string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.weights[name]; ok {
		return 0
	}
	t.weights[name] = 1
	return t.rebuildLocked()
}

// Remove drops name and returns how many table slots changed owner.
func (t *Table) Remove(name string) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.weights[name]; !ok {
		return 0, fmt.Errorf("maglev: remove %q: %w", name, ErrNoBackend)
	}
	delete(t.weights, name)
	return t.rebuildLocked(), nil
}

// SetWeight sets name's weight (adding it if absent) and returns how many
// table slots changed owner. Weight 0 keeps the backend registered but
// assigns it no slots; negative weights are rejected.
func (t *Table) SetWeight(name string, w int) (int, error) {
	if w < 0 {
		return 0, fmt.Errorf("maglev: weight %d for %q must be >= 0", w, name)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if old, ok := t.weights[name]; ok && old == w {
		return 0, nil
	}
	t.weights[name] = w
	return t.rebuildLocked(), nil
}

// Apply replaces the whole backend set atomically and returns how many
// table slots changed owner. The coordinator uses this after health
// transitions: one rebuild per reconvergence, not one per node.
func (t *Table) Apply(backends map[string]int) (int, error) {
	for n, w := range backends {
		if w < 0 {
			return 0, fmt.Errorf("maglev: weight %d for %q must be >= 0", w, n)
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	next := make(map[string]int, len(backends))
	for n, w := range backends {
		next[n] = w
	}
	t.weights = next
	return t.rebuildLocked(), nil
}

// Lookup maps key onto a backend name. ok is false when no backend has a
// positive weight.
func (t *Table) Lookup(key uint64) (name string, ok bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if len(t.names) == 0 {
		return "", false
	}
	return t.names[t.slots[key%t.m]], true
}

// rebuildLocked repopulates the slot table from the current weights and
// returns the number of slots whose owning backend changed. Caller holds mu.
func (t *Table) rebuildLocked() int {
	t.rebuilds++
	oldNames, oldSlots := t.names, t.slots

	names := make([]string, 0, len(t.weights))
	for n, w := range t.weights {
		if w > 0 {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	t.names = names
	if len(names) == 0 {
		t.slots = nil
		return remapped(oldNames, oldSlots, nil, nil, t.m)
	}

	type cursor struct {
		offset, skip uint64
		next         uint64 // how far the permutation walk has advanced
		weight       int
	}
	cur := make([]cursor, len(names))
	for i, n := range names {
		h1, h2 := hash64(n, 0xd1b54a32d192ed03), hash64(n, 0x9e3779b97f4a7c15)
		cur[i] = cursor{
			offset: h1 % t.m,
			skip:   h2%(t.m-1) + 1,
			weight: t.weights[n],
		}
	}

	slots := make([]int32, t.m)
	for i := range slots {
		slots[i] = -1
	}
	var filled uint64
	// Round-robin in sorted-name order; a backend with weight w claims up
	// to w slots per round, so long-run slot share is proportional to
	// weight (the spike/maglev turn-taking scheme).
	for filled < t.m {
		for i := range cur {
			for take := 0; take < cur[i].weight && filled < t.m; take++ {
				c := &cur[i]
				// Walk this backend's preference permutation to its next
				// unclaimed slot. Each backend visits every slot exactly
				// once across m steps, so the walk always terminates.
				for {
					slot := (c.offset + c.next*c.skip) % t.m
					c.next++
					if slots[slot] < 0 {
						slots[slot] = int32(i)
						filled++
						break
					}
				}
			}
		}
	}
	t.slots = slots
	return remapped(oldNames, oldSlots, names, slots, t.m)
}

// remapped counts slots whose owning backend name differs between two
// populated tables (a slot moving to or from "unowned" counts too).
func remapped(oldNames []string, oldSlots []int32, newNames []string, newSlots []int32, m uint64) int {
	n := 0
	for i := uint64(0); i < m; i++ {
		var oldOwner, newOwner string
		if oldSlots != nil {
			oldOwner = oldNames[oldSlots[i]]
		}
		if newSlots != nil {
			newOwner = newNames[newSlots[i]]
		}
		if oldOwner != newOwner {
			n++
		}
	}
	return n
}

// hash64 is FNV-1a over name, xor-folded with a fixed seed so the two
// permutation parameters (offset, skip) are decorrelated.
func hash64(name string, seed uint64) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	v := h.Sum64() ^ seed
	// One splitmix64 finalization round scatters the xor'd seed through
	// all 64 bits.
	v ^= v >> 30
	v *= 0xbf58476d1ce4e5b9
	v ^= v >> 27
	v *= 0x94d049bb133111eb
	v ^= v >> 31
	return v
}
