package cluster

import (
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/farm"
	"repro/internal/server"
)

// maxBody bounds request bodies the coordinator will buffer for replay.
const maxBody = 1 << 20

// Handler returns the coordinator's HTTP surface. It mirrors the worker API
// (submit, status, result, stats) plus the membership endpoints, and speaks
// the same JSON error schema as internal/server.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", c.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", c.handleJobGet)
	mux.HandleFunc("GET /v1/jobs/{id}/result", c.handleJobGet)
	mux.HandleFunc("POST /v1/workers/register", c.handleRegister)
	mux.HandleFunc("DELETE /v1/workers/{name}", c.handleDeregister)
	mux.HandleFunc("GET /v1/workers", c.handleWorkers)
	mux.HandleFunc("GET /v1/stats", c.handleStats)
	mux.Handle("GET /metrics", c.reg.Handler())
	mux.HandleFunc("GET /healthz", c.handleHealth)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		server.WriteError(w, http.StatusNotFound, server.ErrCodeNotFound,
			"no such endpoint %s %s", r.Method, r.URL.Path)
	})
	return c.middleware(mux)
}

var requestSeq atomic.Uint64

// middleware stamps X-Request-ID (honoring a client-sent one) and logs the
// request, mirroring the worker middleware so IDs correlate across hops.
func (c *Coordinator) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			var b [8]byte
			if _, err := rand.Read(b[:]); err != nil {
				id = fmt.Sprintf("coord-%d", requestSeq.Add(1))
			} else {
				id = hex.EncodeToString(b[:])
			}
		}
		w.Header().Set("X-Request-ID", id)
		start := time.Now()
		next.ServeHTTP(w, r)
		c.log.Info("request", "request_id", id, "method", r.Method,
			"path", r.URL.Path, "dur_us", time.Since(start).Microseconds())
	})
}

// handleSubmit routes one job by content hash. The body is decoded only to
// compute the routing key; the worker receives the original bytes, so the
// coordinator can replay them verbatim after a worker death.
func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBody))
	if err != nil {
		server.WriteError(w, http.StatusBadRequest, server.ErrCodeBadRequest, "read body: %v", err)
		return
	}
	var req server.JobRequest
	if err := json.Unmarshal(body, &req); err != nil {
		server.WriteError(w, http.StatusBadRequest, server.ErrCodeBadRequest, "bad request body: %v", err)
		return
	}
	job, err := req.Job()
	if err != nil {
		server.WriteError(w, http.StatusBadRequest, server.ErrCodeBadRequest, "%v", err)
		return
	}
	id, err := job.Key()
	if err != nil {
		server.WriteError(w, http.StatusBadRequest, server.ErrCodeBadRequest, "%v", err)
		return
	}

	c.mu.Lock()
	tj, known := c.jobs[id]
	c.mu.Unlock()
	if !known {
		tj = &trackedJob{id: id, body: body}
		// Journal before placing: if the process dies between here and the
		// worker's ack, restart recovery replays the job — a duplicate
		// execution is harmless because results are content-addressed.
		c.journalAccept(id, body)
	}
	resp, err := c.place(r.Context(), tj)
	if err != nil {
		server.WriteError(w, http.StatusServiceUnavailable, server.ErrCodeInternal, "%v", err)
		return
	}
	copyResponse(w, resp)
}

// handleJobGet proxies status and result polls to the job's owner. A worker
// that forgot a tracked job (it restarted) gets the job replayed and the
// client a 202 to poll again — the job is delayed, never lost.
func (c *Coordinator) handleJobGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	c.mu.Lock()
	tj, tracked := c.jobs[id]
	var node, url string
	if tracked {
		if ws := c.workers[tj.node]; ws != nil {
			node, url = tj.node, ws.URL
		}
	}
	c.mu.Unlock()
	if !tracked {
		server.WriteError(w, http.StatusNotFound, server.ErrCodeNotFound, "unknown job %q", id)
		return
	}
	if url == "" {
		// Owner is gone entirely (deregistered): replace it now.
		c.replayTracked(w, r, tj)
		return
	}

	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, url+r.URL.Path, nil)
	if err != nil {
		server.WriteError(w, http.StatusInternalServerError, server.ErrCodeInternal, "%v", err)
		return
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		c.noteFailure(node)
		c.replayTracked(w, r, tj)
		return
	}
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		c.replayTracked(w, r, tj)
		return
	}
	if !c.observeJobResponse(tj, r.URL.Path, resp) {
		// The worker's body could not be read in full (connection died
		// mid-response): answering 200 with partial bytes would hand the
		// client a wrong answer, so fail the poll and let it retry.
		c.proxyErrors.Inc()
		server.WriteError(w, http.StatusBadGateway, server.ErrCodeInternal,
			"worker response truncated; retry")
		return
	}
	copyResponse(w, resp)
}

// replayTracked re-places a tracked job whose owner no longer remembers it
// and answers 202 so the client keeps polling.
func (c *Coordinator) replayTracked(w http.ResponseWriter, r *http.Request, tj *trackedJob) {
	resp, err := c.place(r.Context(), tj)
	if err != nil {
		server.WriteError(w, http.StatusServiceUnavailable, server.ErrCodeInternal, "%v", err)
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, maxBody))
	resp.Body.Close()
	c.reroutes.Inc()
	w.Header().Set("Retry-After", "1")
	server.WriteJSON(w, http.StatusAccepted, server.StatusResponse{ID: tj.id, Status: "queued"})
}

// observeJobResponse peeks at a successful poll to learn a job finished, so
// worker deaths stop triggering replays of already-delivered results. The
// body is re-buffered because peeking consumes it. Returns false when the
// body could not be read in full — the response must not be relayed.
func (c *Coordinator) observeJobResponse(tj *trackedJob, path string, resp *http.Response) bool {
	if resp.StatusCode != http.StatusOK {
		return true
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxBody))
	resp.Body.Close()
	if err != nil {
		resp.Body = io.NopCloser(bytes.NewReader(nil))
		return false
	}
	resp.Body = io.NopCloser(bytes.NewReader(body))
	done := false
	if len(path) > len("/result") && path[len(path)-len("/result"):] == "/result" {
		done = true // a 200 result body is the report itself
	} else {
		var sr server.StatusResponse
		if json.Unmarshal(body, &sr) == nil {
			done = sr.Status == "done" || sr.Status == "error"
		}
	}
	if done {
		c.mu.Lock()
		already := tj.done
		tj.done = true
		c.mu.Unlock()
		if !already {
			c.journalDone(tj.id)
		}
	}
	return true
}

// copyResponse relays a worker response to the client: status, body, and the
// backpressure headers clients act on.
func copyResponse(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	if v := resp.Header.Get("Content-Type"); v != "" {
		w.Header().Set("Content-Type", v)
	}
	if v := resp.Header.Get("Retry-After"); v != "" {
		w.Header().Set("Retry-After", v)
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, io.LimitReader(resp.Body, maxBody))
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var worker Worker
	if err := json.NewDecoder(io.LimitReader(r.Body, 4096)).Decode(&worker); err != nil {
		server.WriteError(w, http.StatusBadRequest, server.ErrCodeBadRequest, "bad registration: %v", err)
		return
	}
	if err := c.Register(worker); err != nil {
		server.WriteError(w, http.StatusBadRequest, server.ErrCodeBadRequest, "%v", err)
		return
	}
	server.WriteJSON(w, http.StatusOK, map[string]any{"registered": worker.Name})
}

func (c *Coordinator) handleDeregister(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !c.Deregister(name) {
		server.WriteError(w, http.StatusNotFound, server.ErrCodeNotFound, "unknown worker %q", name)
		return
	}
	server.WriteJSON(w, http.StatusOK, map[string]any{"deregistered": name})
}

func (c *Coordinator) handleWorkers(w http.ResponseWriter, _ *http.Request) {
	server.WriteJSON(w, http.StatusOK, map[string]any{"workers": c.Workers()})
}

// handleHealth: a coordinator is healthy when it can place work somewhere.
func (c *Coordinator) handleHealth(w http.ResponseWriter, _ *http.Request) {
	c.mu.Lock()
	healthy := 0
	for _, ws := range c.workers {
		if ws.healthy {
			healthy++
		}
	}
	c.mu.Unlock()
	if healthy == 0 {
		server.WriteError(w, http.StatusServiceUnavailable, server.ErrCodeInternal, "no healthy workers")
		return
	}
	server.WriteJSON(w, http.StatusOK, map[string]any{"status": "ok", "healthy_workers": healthy})
}

// ClusterStats is the coordinator's GET /v1/stats body: the summed farm
// counters in the worker schema (so clients written against one worker read
// it unchanged) plus per-node breakdowns and routing state.
type ClusterStats struct {
	server.StatsResponse
	Nodes     map[string]*server.StatsResponse `json:"nodes"`
	Healthy   int                              `json:"healthy_workers"`
	Tracked   int                              `json:"jobs_tracked"`
	MaglevLen int                              `json:"maglev_table_size"`
}

// handleStats aggregates every healthy worker's /v1/stats. Unreachable
// workers are skipped (and their probes counted) rather than failing the
// whole scrape.
func (c *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	targets := make(map[string]string)
	healthy := 0
	for name, ws := range c.workers {
		if ws.healthy {
			targets[name] = ws.URL
			healthy++
		}
	}
	tracked := len(c.jobs)
	tableLen := int(c.opts.TableSize)
	c.mu.Unlock()

	out := ClusterStats{
		Nodes:     make(map[string]*server.StatsResponse, len(targets)),
		Healthy:   healthy,
		Tracked:   tracked,
		MaglevLen: tableLen,
	}
	for name, url := range targets {
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, url+"/v1/stats", nil)
		if err != nil {
			continue
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			c.noteFailure(name)
			continue
		}
		var sr server.StatsResponse
		err = json.NewDecoder(io.LimitReader(resp.Body, maxBody)).Decode(&sr)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			c.proxyErrors.Inc()
			continue
		}
		out.Nodes[name] = &sr
		out.Farm = sumCounters(out.Farm, sr.Farm)
		out.CacheLen += sr.CacheLen
		out.QueueLen += sr.QueueLen
		out.QueueCap += sr.QueueCap
		out.Workers += sr.Workers
		out.JobsKnown += sr.JobsKnown
	}
	server.WriteJSON(w, http.StatusOK, out)
}

// sumCounters adds two farm counter snapshots field by field.
func sumCounters(a, b farm.Counters) farm.Counters {
	return farm.Counters{
		Jobs:        a.Jobs + b.Jobs,
		CacheHits:   a.CacheHits + b.CacheHits,
		CacheMisses: a.CacheMisses + b.CacheMisses,
		DedupWaits:  a.DedupWaits + b.DedupWaits,
		Runs:        a.Runs + b.Runs,
		Errors:      a.Errors + b.Errors,
		Panics:      a.Panics + b.Panics,
		Evictions:   a.Evictions + b.Evictions,
		Retries:     a.Retries + b.Retries,
		Timeouts:    a.Timeouts + b.Timeouts,
		StoreHits:   a.StoreHits + b.StoreHits,
		StorePuts:   a.StorePuts + b.StorePuts,
		StoreErrors: a.StoreErrors + b.StoreErrors,
	}
}
