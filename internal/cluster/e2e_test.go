package cluster

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/cluster/diskstore"
	"repro/internal/farm"
	"repro/internal/metrics"
	"repro/internal/server"
)

// e2eWorker is a real cpelide-server (farm + HTTP surface) on a shared
// persistent store, standing in for one cluster node.
type e2eWorker struct {
	name string
	farm *farm.Farm
	srv  *server.Server
	ts   *httptest.Server
}

func newE2EWorker(t *testing.T, name, storeDir string) *e2eWorker {
	t.Helper()
	st, err := diskstore.Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	eng := farm.New(farm.Options{Workers: 2, Store: st})
	t.Cleanup(eng.Close)
	s := server.New(eng, 64)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return &e2eWorker{name: name, farm: eng, srv: s, ts: ts}
}

// kill simulates a node crash: drop every connection and stop listening.
func (w *e2eWorker) kill() {
	w.ts.CloseClientConnections()
	w.ts.Close()
}

// clusterJobs sums the farm job counters the coordinator currently sees.
func clusterJobs(t *testing.T, coordURL string) uint64 {
	t.Helper()
	resp, err := http.Get(coordURL + "/v1/stats")
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	var cs ClusterStats
	if err := json.NewDecoder(resp.Body).Decode(&cs); err != nil {
		return 0
	}
	return cs.Farm.Jobs
}

// TestClusterE2E is the ISSUE's acceptance scenario: a 3-node cluster runs a
// 200-job campaign (100 distinct bodies, each submitted twice) while one
// worker is killed mid-run — zero jobs lost. Then a fresh coordinator and a
// fresh worker over the same store directory replay the campaign and serve
// everything from the persistent store without a single new simulation.
func TestClusterE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster e2e is not a -short test")
	}
	storeDir := t.TempDir()

	reg := metrics.NewRegistry()
	coord, err := NewCoordinator(Options{
		HealthInterval: 20 * time.Millisecond,
		FailThreshold:  2,
		ProxyTimeout:   5 * time.Second,
		Metrics:        reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	coordTS := httptest.NewServer(coord.Handler())
	workers := []*e2eWorker{
		newE2EWorker(t, "w1", storeDir),
		newE2EWorker(t, "w2", storeDir),
		newE2EWorker(t, "w3", storeDir),
	}
	for _, w := range workers {
		if err := coord.Register(Worker{Name: w.name, URL: w.ts.URL}); err != nil {
			t.Fatal(err)
		}
	}

	campaign := Campaign{
		BaseURL:      coordTS.URL,
		Jobs:         200,
		Distinct:     100,
		Concurrency:  16,
		Scale:        0.05,
		Seed:         42,
		PollInterval: 10 * time.Millisecond,
		JobTimeout:   60 * time.Second,
	}

	type campaignOut struct {
		res *Result
		err error
	}
	done := make(chan campaignOut, 1)
	go func() {
		res, err := campaign.Run(context.Background())
		done <- campaignOut{res, err}
	}()

	// Kill one worker once the campaign is visibly in flight.
	killDeadline := time.Now().Add(30 * time.Second)
	for clusterJobs(t, coordTS.URL) < 40 {
		if time.Now().After(killDeadline) {
			t.Fatal("campaign never reached 40 jobs; cannot kill mid-run")
		}
		time.Sleep(10 * time.Millisecond)
	}
	workers[1].kill()
	t.Log("killed w2 mid-campaign")

	out := <-done
	if out.err != nil {
		t.Fatalf("campaign: %v", out.err)
	}
	res := out.res
	if res.Lost != 0 || res.Failed != 0 || res.Completed != 200 {
		t.Fatalf("campaign lost jobs across the kill: %+v", res)
	}
	t.Logf("campaign 1: %.1f jobs/s, p99 %.1fms, resubmits %d, hit rate %.2f",
		res.ThroughputJPS, res.P99MS, res.Resubmits, res.CacheHitRate)

	// The kill must have been noticed: two healthy workers and at least one
	// Maglev reconvergence beyond the three registrations.
	mresp, err := http.Get(coordTS.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	expo, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if v, ok := metrics.ParseValue(string(expo), "cluster_workers_healthy"); !ok || v != 2 {
		t.Errorf("cluster_workers_healthy = %v (ok=%v), want 2", v, ok)
	}
	if v, ok := metrics.ParseValue(string(expo), "cluster_maglev_rebuilds_total"); !ok || v < 4 {
		t.Errorf("cluster_maglev_rebuilds_total = %v (ok=%v), want >= 4", v, ok)
	}

	// Stop the whole first deployment.
	coordTS.Close()
	coord.Close()
	workers[0].kill()
	workers[2].kill()

	// Restart story: new coordinator, one brand-new worker, same store dir.
	// Every result must come off disk — zero new simulations.
	coord2, err := NewCoordinator(Options{
		HealthInterval: 20 * time.Millisecond,
		Metrics:        metrics.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord2.Close()
	coordTS2 := httptest.NewServer(coord2.Handler())
	defer coordTS2.Close()
	fresh := newE2EWorker(t, "w4", storeDir)
	if err := coord2.Register(Worker{Name: fresh.name, URL: fresh.ts.URL}); err != nil {
		t.Fatal(err)
	}

	campaign.BaseURL = coordTS2.URL
	res2, err := campaign.Run(context.Background())
	if err != nil {
		t.Fatalf("restart campaign: %v", err)
	}
	if res2.Lost != 0 || res2.Failed != 0 || res2.Completed != 200 {
		t.Fatalf("restart campaign incomplete: %+v", res2)
	}
	if res2.Runs != 0 {
		t.Errorf("restart campaign re-simulated %d jobs; store should have served all", res2.Runs)
	}
	if res2.StoreHits != 100 {
		t.Errorf("restart campaign store hits = %d, want 100 (one per distinct body)", res2.StoreHits)
	}
	c := fresh.farm.Counters()
	if c.StoreHits != 100 || c.Runs != 0 {
		t.Errorf("fresh worker counters = %+v, want StoreHits=100 Runs=0", c)
	}
	t.Logf("campaign 2 (restart): %.1f jobs/s, p99 %.1fms, store hits %d",
		res2.ThroughputJPS, res2.P99MS, res2.StoreHits)
}
