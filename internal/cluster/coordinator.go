// Package cluster turns N independent cpelide-server processes into one
// experiment farm. A Coordinator fronts the workers: submissions are routed
// by their content hash through a Maglev table (weighted, minimal disruption
// on membership change), worker health is polled continuously, and jobs
// tracked on a dead worker are resubmitted to the surviving ones. Because
// job IDs are content hashes of deterministic simulations, re-execution
// after a reroute returns byte-identical results — the cluster offers
// at-most-once observable semantics without distributed consensus. Workers
// pointed at one shared diskstore directory make reroutes and restarts
// cheap: the new owner usually finds the result already on disk.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster/journal"
	"repro/internal/cluster/maglev"
	"repro/internal/metrics"
)

// Sentinel errors for routing failures; test with errors.Is.
var (
	// ErrNoWorkers means no healthy worker is registered to take a job.
	ErrNoWorkers = errors.New("cluster: no healthy workers")
	// ErrJobLost means a job could not be placed on any worker despite
	// retries; callers should resubmit.
	ErrJobLost = errors.New("cluster: job lost")
)

// Options tunes a Coordinator. The zero value is production-usable.
type Options struct {
	// TableSize is the Maglev lookup-table size; 0 uses maglev.SmallM.
	// Must be prime.
	TableSize uint64
	// HealthInterval paces the worker health loop (default 250ms).
	HealthInterval time.Duration
	// FailThreshold is how many consecutive failed probes mark a worker
	// dead (default 2).
	FailThreshold int
	// ProxyTimeout bounds each proxied request (default 30s). Simulations
	// run asynchronously on the worker, so this only covers the HTTP
	// round-trip, not job execution.
	ProxyTimeout time.Duration
	// Metrics, when non-nil, receives the cluster series. Nil disables.
	Metrics *metrics.Registry
	// Logger receives structured logs; nil discards.
	Logger *slog.Logger

	// Journal, when non-nil, is the coordinator's write-ahead log: accepted
	// job bodies, terminal states, and worker membership are appended to it,
	// and a coordinator built over an existing journal recovers that state —
	// unfinished jobs are replayed onto the worker set, so a SIGKILL
	// mid-campaign loses nothing. The coordinator owns the journal and
	// closes it in Close.
	Journal *journal.Journal
	// Transport overrides the HTTP transport used to reach workers; nil
	// uses http.DefaultTransport. The chaos harness injects faults here.
	Transport http.RoundTripper
	// HedgeAfter, when > 0, enables hedged submits: if a routed job's
	// owner has not answered within this delay (or the observed
	// HedgePercentile submit latency, whichever is larger), the job is
	// re-issued to the next healthy Maglev backend and the first
	// conclusive answer wins. Safe because jobs are content-addressed:
	// duplicate execution returns byte-identical results.
	HedgeAfter time.Duration
	// HedgePercentile in (0,1) raises the hedge delay to that quantile of
	// observed submit latencies once enough samples exist, so hedges fire
	// on genuine stragglers rather than the median. Only consulted when
	// HedgeAfter > 0.
	HedgePercentile float64
}

// workerState is one registered worker plus its health bookkeeping.
type workerState struct {
	Worker
	healthy bool
	fails   int // consecutive failed probes
}

// trackedJob is one submission the coordinator has placed. The original
// body is kept so the job can be replayed verbatim on another worker if its
// owner dies before the result is fetched.
type trackedJob struct {
	id   string
	body []byte
	node string
	done bool
}

// Coordinator routes jobs to workers and keeps them placed across failures.
type Coordinator struct {
	opts Options
	hc   *http.Client
	log  *slog.Logger
	reg  *metrics.Registry
	jnl  *journal.Journal

	mu      sync.Mutex
	table   *maglev.Table
	workers map[string]*workerState
	jobs    map[string]*trackedJob

	routed      map[string]*metrics.Counter // per-node jobs routed
	reroutes    *metrics.Counter
	proxyErrors *metrics.Counter
	remapped    *metrics.Counter
	rebuilds    *metrics.Counter
	journalErrs *metrics.Counter
	replayed    *metrics.Counter
	hedges      *metrics.Counter
	hedgeWins   *metrics.Counter
	submitLat   *metrics.Histogram

	replaying  atomic.Bool // one replayUnplaced goroutine at a time
	healthWG   sync.WaitGroup
	healthStop chan struct{}
}

// NewCoordinator builds a coordinator and starts its health loop. Call
// Close to stop it.
func NewCoordinator(o Options) (*Coordinator, error) {
	if o.TableSize == 0 {
		o.TableSize = maglev.SmallM
	}
	if o.HealthInterval <= 0 {
		o.HealthInterval = 250 * time.Millisecond
	}
	if o.FailThreshold <= 0 {
		o.FailThreshold = 2
	}
	if o.ProxyTimeout <= 0 {
		o.ProxyTimeout = 30 * time.Second
	}
	t, err := maglev.New(o.TableSize)
	if err != nil {
		return nil, err
	}
	log := o.Logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	c := &Coordinator{
		opts:       o,
		hc:         &http.Client{Timeout: o.ProxyTimeout, Transport: o.Transport},
		log:        log,
		reg:        o.Metrics,
		jnl:        o.Journal,
		table:      t,
		workers:    make(map[string]*workerState),
		jobs:       make(map[string]*trackedJob),
		routed:     make(map[string]*metrics.Counter),
		healthStop: make(chan struct{}),
	}
	c.reroutes = c.reg.Counter("cluster_reroutes_total",
		"Jobs replayed onto a surviving worker after their owner died.")
	c.proxyErrors = c.reg.Counter("cluster_proxy_errors_total",
		"Failed round-trips to workers (the request may still succeed on retry).")
	c.remapped = c.reg.Counter("cluster_maglev_remapped_slots_total",
		"Lookup-table slots that changed owner across all rebuilds.")
	c.rebuilds = c.reg.Counter("cluster_maglev_rebuilds_total",
		"Maglev table rebuilds from membership or health changes.")
	c.journalErrs = c.reg.Counter("cluster_journal_errors_total",
		"Journal appends that failed (recovery coverage degraded, requests unaffected).")
	c.replayed = c.reg.Counter("cluster_journal_replayed_total",
		"Journal-recovered jobs re-placed onto workers after a restart.")
	c.hedges = c.reg.Counter("cluster_hedges_total",
		"Submits re-issued to a second worker after the hedge delay.")
	c.hedgeWins = c.reg.Counter("cluster_hedge_wins_total",
		"Hedged submits where the second worker answered first.")
	c.submitLat = c.reg.Histogram("cluster_submit_latency_us",
		"Round-trip latency of job submits to workers, microseconds.")
	c.reg.GaugeFunc("cluster_workers_healthy", "Registered workers currently passing health checks.", func() int64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		n := int64(0)
		for _, w := range c.workers {
			if w.healthy {
				n++
			}
		}
		return n
	})
	c.reg.GaugeFunc("cluster_workers_total", "Registered workers, healthy or not.", func() int64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return int64(len(c.workers))
	})
	c.reg.GaugeFunc("cluster_jobs_tracked", "Jobs the coordinator has placed and still remembers.", func() int64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return int64(len(c.jobs))
	})
	c.reg.GaugeFunc("cluster_jobs_inflight", "Tracked jobs not yet observed done.", func() int64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		n := int64(0)
		for _, j := range c.jobs {
			if !j.done {
				n++
			}
		}
		return n
	})
	if c.jnl != nil {
		c.reg.GaugeFunc("cluster_journal_size_bytes", "Current size of the write-ahead journal.", func() int64 {
			return c.jnl.Size()
		})
		c.reg.GaugeFunc("cluster_journal_appends_total", "Records appended to the journal since open.", func() int64 {
			return int64(c.jnl.Stats().Appends)
		})
		c.reg.GaugeFunc("cluster_journal_compactions_total", "Journal compactions since open.", func() int64 {
			return int64(c.jnl.Stats().Compactions)
		})
		c.reg.GaugeFunc("cluster_journal_recovered_jobs", "Unfinished jobs recovered from the journal at open.", func() int64 {
			return int64(c.jnl.Stats().RecoveredJobs)
		})
		c.recoverFromJournal()
	}
	c.healthWG.Add(1)
	go c.healthLoop()
	return c, nil
}

// recoverFromJournal loads the journal's replayed state — worker membership
// and unfinished jobs — into the coordinator before it starts serving. The
// health loop immediately validates the recovered workers (dead ones fail
// their probes and drop out), and recovered jobs are re-placed by
// replayUnplaced or by the first client poll, whichever comes first.
func (c *Coordinator) recoverFromJournal() {
	c.mu.Lock()
	for name, body := range c.jnl.Workers() {
		var w Worker
		if err := json.Unmarshal(body, &w); err != nil || w.Name == "" || w.URL == "" {
			c.log.Error("journal: bad worker record", "name", name, "err", err)
			continue
		}
		if w.Weight <= 0 {
			w.Weight = 1
		}
		c.workers[w.Name] = &workerState{Worker: w, healthy: true}
	}
	pending := c.jnl.PendingJobs()
	for id, body := range pending {
		c.jobs[id] = &trackedJob{id: id, body: body}
	}
	if len(c.workers) > 0 {
		c.rebuildLocked()
	}
	workers, jobs := len(c.workers), len(c.jobs)
	c.mu.Unlock()
	if workers+jobs > 0 {
		c.log.Info("journal recovery", "workers", workers, "unfinished_jobs", jobs,
			"truncated_bytes", c.jnl.Stats().TruncatedBytes)
	}
	if jobs > 0 {
		c.replayUnplaced()
	}
}

// replayUnplaced places every tracked job that has no owner (recovered from
// the journal, or whose placement failed outright) onto the current worker
// set. At most one replay pass runs at a time; it is kicked at recovery and
// whenever a worker (re)registers.
func (c *Coordinator) replayUnplaced() {
	if !c.replaying.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer c.replaying.Store(false)
		c.mu.Lock()
		var moving []*trackedJob
		for _, tj := range c.jobs {
			if tj.node == "" && !tj.done {
				moving = append(moving, tj)
			}
		}
		c.mu.Unlock()
		if len(moving) == 0 {
			return
		}
		// Deterministic order so recovery runs are comparable.
		sort.Slice(moving, func(i, j int) bool { return moving[i].id < moving[j].id })
		placed := 0
		for _, tj := range moving {
			ctx, cancel := context.WithTimeout(context.Background(), c.opts.ProxyTimeout)
			resp, err := c.place(ctx, tj)
			cancel()
			if err != nil {
				// Stays unplaced; the next registration or client poll
				// retries it.
				c.log.Error("replay failed", "job_id", tj.id, "err", err)
				continue
			}
			io.Copy(io.Discard, io.LimitReader(resp.Body, maxBody))
			resp.Body.Close()
			c.replayed.Inc()
			placed++
		}
		c.log.Info("replayed recovered jobs", "placed", placed, "of", len(moving))
	}()
}

// journalAccept records an accepted job. Journal failures are counted and
// logged but never fail the request: the journal is a recovery accelerator,
// not an admission gate.
func (c *Coordinator) journalAccept(id string, body []byte) {
	if c.jnl == nil {
		return
	}
	if err := c.jnl.Accept(id, body); err != nil {
		c.journalErrs.Inc()
		c.log.Error("journal accept", "job_id", id, "err", err)
	}
}

// journalDone records a job reaching a terminal state.
func (c *Coordinator) journalDone(id string) {
	if c.jnl == nil {
		return
	}
	if err := c.jnl.Done(id); err != nil {
		c.journalErrs.Inc()
		c.log.Error("journal done", "job_id", id, "err", err)
	}
}

// Close stops the health loop and closes the journal. In-flight proxied
// requests finish on their own timeouts.
func (c *Coordinator) Close() {
	close(c.healthStop)
	c.healthWG.Wait()
	if c.jnl != nil {
		if err := c.jnl.Close(); err != nil {
			c.log.Error("journal close", "err", err)
		}
	}
}

// routedCounter returns the per-node routing counter, creating the labeled
// series on first use.
func (c *Coordinator) routedCounter(node string) *metrics.Counter {
	if ctr, ok := c.routed[node]; ok {
		return ctr
	}
	ctr := c.reg.Counter(fmt.Sprintf("cluster_jobs_routed_total{node=%q}", node),
		"Jobs routed to each worker.")
	c.routed[node] = ctr
	return ctr
}

// rebuildLocked reprograms the Maglev table from the currently healthy
// workers. Callers hold c.mu.
func (c *Coordinator) rebuildLocked() {
	weights := make(map[string]int)
	for name, w := range c.workers {
		if w.healthy {
			weights[name] = w.Weight
		}
	}
	moved, err := c.table.Apply(weights)
	if err != nil {
		// Apply only fails on invalid weights, which registration rejects.
		c.log.Error("maglev rebuild", "err", err)
		return
	}
	c.rebuilds.Inc()
	c.remapped.Add(uint64(moved))
	c.log.Info("maglev rebuilt", "healthy", len(weights), "remapped_slots", moved)
}

// Register adds or updates a worker and reprograms the routing table.
// Re-registering an identical healthy worker is a no-op (workers retry
// registration across coordinator restarts), so it neither churns the table
// nor grows the journal.
func (c *Coordinator) Register(w Worker) error {
	if w.Name == "" || w.URL == "" {
		return fmt.Errorf("cluster: registration needs name and url, got %+v", w)
	}
	if w.Weight <= 0 {
		w.Weight = 1
	}
	c.mu.Lock()
	if prev, ok := c.workers[w.Name]; ok && prev.Worker == w && prev.healthy {
		c.mu.Unlock()
		return nil
	}
	c.workers[w.Name] = &workerState{Worker: w, healthy: true}
	c.rebuildLocked()
	c.mu.Unlock()
	if c.jnl != nil {
		body, err := json.Marshal(w)
		if err == nil {
			err = c.jnl.Worker(w.Name, body)
		}
		if err != nil {
			c.journalErrs.Inc()
			c.log.Error("journal worker", "node", w.Name, "err", err)
		}
	}
	c.log.Info("worker registered", "node", w.Name, "url", w.URL, "weight", w.Weight)
	c.replayUnplaced()
	return nil
}

// Deregister removes a worker (clean shutdown path) and reroutes its jobs.
func (c *Coordinator) Deregister(name string) bool {
	c.mu.Lock()
	_, ok := c.workers[name]
	delete(c.workers, name)
	if ok {
		c.rebuildLocked()
	}
	c.mu.Unlock()
	if ok {
		if c.jnl != nil {
			if err := c.jnl.WorkerGone(name); err != nil {
				c.journalErrs.Inc()
				c.log.Error("journal worker-gone", "node", name, "err", err)
			}
		}
		c.log.Info("worker deregistered", "node", name)
		c.rerouteFrom(name)
	}
	return ok
}

// Workers snapshots the registered workers and their health.
func (c *Coordinator) Workers() []WorkerStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]WorkerStatus, 0, len(c.workers))
	for _, w := range c.workers {
		out = append(out, WorkerStatus{Worker: w.Worker, Healthy: w.healthy})
	}
	return out
}

// WorkerStatus is one row of the GET /v1/workers listing.
type WorkerStatus struct {
	Worker
	Healthy bool `json:"healthy"`
}

// routeKey folds a content-hash job ID into the Maglev keyspace using its
// leading 16 hex digits (64 bits of SHA-256 is plenty for load spreading).
func routeKey(id string) uint64 {
	if len(id) > 16 {
		id = id[:16]
	}
	v, err := strconv.ParseUint(id, 16, 64)
	if err != nil {
		// Non-hash IDs can only come from hand-built requests; any stable
		// fold keeps them routable.
		var h uint64 = 14695981039346656037
		for i := 0; i < len(id); i++ {
			h = (h ^ uint64(id[i])) * 1099511628211
		}
		return h
	}
	return v
}

// ownerOf resolves a job ID to its current owner.
func (c *Coordinator) ownerOf(id string) (name, url string, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	node, ok := c.table.Lookup(routeKey(id))
	if !ok {
		return "", "", ErrNoWorkers
	}
	w := c.workers[node]
	if w == nil {
		return "", "", ErrNoWorkers
	}
	return node, w.URL, nil
}

// noteFailure records one failed round-trip to a worker; at FailThreshold
// consecutive failures the worker is marked dead, the table reconverges,
// and its jobs are replayed elsewhere.
func (c *Coordinator) noteFailure(node string) {
	c.proxyErrors.Inc()
	c.mu.Lock()
	w := c.workers[node]
	dead := false
	if w != nil && w.healthy {
		w.fails++
		if w.fails >= c.opts.FailThreshold {
			w.healthy = false
			dead = true
			c.rebuildLocked()
		}
	}
	c.mu.Unlock()
	if dead {
		c.log.Warn("worker marked dead", "node", node)
		c.rerouteFrom(node)
	}
}

// noteSuccess clears a worker's consecutive-failure count and, if it was
// dead, brings it back and reconverges the table.
func (c *Coordinator) noteSuccess(node string) {
	c.mu.Lock()
	w := c.workers[node]
	revived := false
	if w != nil {
		w.fails = 0
		if !w.healthy {
			w.healthy = true
			revived = true
			c.rebuildLocked()
		}
	}
	c.mu.Unlock()
	if revived {
		c.log.Info("worker revived", "node", node)
	}
}

// healthLoop probes every worker's /healthz at HealthInterval.
func (c *Coordinator) healthLoop() {
	defer c.healthWG.Done()
	tick := time.NewTicker(c.opts.HealthInterval)
	defer tick.Stop()
	for {
		select {
		case <-c.healthStop:
			return
		case <-tick.C:
		}
		c.mu.Lock()
		targets := make(map[string]string, len(c.workers))
		for name, w := range c.workers {
			targets[name] = w.URL
		}
		c.mu.Unlock()
		for name, url := range targets {
			req, err := http.NewRequest(http.MethodGet, url+"/healthz", nil)
			if err != nil {
				c.noteFailure(name)
				continue
			}
			resp, err := c.hc.Do(req)
			if err != nil {
				c.noteFailure(name)
				continue
			}
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				c.noteSuccess(name)
			} else {
				// A draining worker answers 503: stop routing new jobs to
				// it and move its unfinished ones.
				c.noteFailure(name)
			}
		}
	}
}

// placeAttempts bounds how many distinct placements a job gets before it is
// reported lost; backoff between attempts is full-jitter exponential.
const (
	placeAttempts  = 5
	placeBaseDelay = 50 * time.Millisecond
)

// place submits a tracked job to its current owner, retrying (and letting
// failure-driven table rebuilds pick new owners) until a worker accepts it.
func (c *Coordinator) place(ctx context.Context, tj *trackedJob) (*http.Response, error) {
	var last error
	for attempt := 0; attempt < placeAttempts; attempt++ {
		if attempt > 0 {
			delay := placeBaseDelay << (attempt - 1)
			select {
			case <-ctx.Done():
				return nil, fmt.Errorf("%w: %s: %v (last: %v)", ErrJobLost, tj.id, ctx.Err(), last)
			case <-time.After(time.Duration(rand.Int63n(int64(delay) + 1))):
			}
		}
		node, url, err := c.ownerOf(tj.id)
		if err != nil {
			last = err
			continue
		}
		resp, node, err := c.submitHedged(ctx, tj, node, url)
		if err != nil {
			last = err
			c.noteFailure(node)
			continue
		}
		switch {
		case resp.StatusCode < 300:
			c.mu.Lock()
			tj.node = node
			c.jobs[tj.id] = tj
			c.routedCounter(node).Inc()
			c.mu.Unlock()
			c.noteSuccess(node)
			return resp, nil
		case resp.StatusCode == http.StatusTooManyRequests ||
			resp.StatusCode == http.StatusServiceUnavailable:
			// Backpressure or drain: same worker may accept after backoff,
			// or the health loop reroutes around it.
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			last = fmt.Errorf("%s answered %d", node, resp.StatusCode)
			c.proxyErrors.Inc()
		case resp.StatusCode >= 500:
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			last = fmt.Errorf("%s answered %d", node, resp.StatusCode)
			c.noteFailure(node)
		default:
			// 4xx is the client's problem; pass it through untouched.
			return resp, nil
		}
	}
	return nil, fmt.Errorf("%w: %s after %d attempts: %v", ErrJobLost, tj.id, placeAttempts, last)
}

// submitTo posts one job body to a worker and records the round-trip
// latency for the hedge-delay percentile.
func (c *Coordinator) submitTo(ctx context.Context, url string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		url+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	start := time.Now()
	resp, err := c.hc.Do(req)
	if err == nil {
		c.submitLat.Observe(uint64(time.Since(start).Microseconds()))
	}
	return resp, err
}

// hedgeDelay returns how long to wait before re-issuing a submit: the
// HedgeAfter floor, raised to the observed HedgePercentile submit latency
// once enough samples exist. 0 disables hedging.
func (c *Coordinator) hedgeDelay() time.Duration {
	d := c.opts.HedgeAfter
	if d <= 0 {
		return 0
	}
	const minSamples = 20
	if p := c.opts.HedgePercentile; p > 0 && p < 1 && c.submitLat.Count() >= minSamples {
		if q := time.Duration(c.submitLat.Quantile(p)) * time.Microsecond; q > d {
			d = q
		}
	}
	return d
}

// nextBackend returns the healthy worker after node in sorted-name order —
// the deterministic hedge target.
func (c *Coordinator) nextBackend(node string) (string, string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var names []string
	for name, ws := range c.workers {
		if ws.healthy && name != node {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return "", "", false
	}
	sort.Strings(names)
	for _, n := range names {
		if n > node {
			return n, c.workers[n].URL, true
		}
	}
	return names[0], c.workers[names[0]].URL, true
}

// submitResult is one hedged attempt's outcome.
type submitResult struct {
	resp *http.Response
	node string
	err  error
}

// cancelOnClose ties an attempt's context to its response body, so the
// winner's context lives until the caller finishes reading and the losers'
// are torn down as they are reaped.
type cancelOnClose struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (b *cancelOnClose) Close() error {
	err := b.ReadCloser.Close()
	b.cancel()
	return err
}

// launchSubmit runs one submit attempt in its own cancellable context and
// delivers the outcome on results.
func (c *Coordinator) launchSubmit(ctx context.Context, node, url string, body []byte, results chan<- submitResult) {
	actx, cancel := context.WithCancel(ctx)
	go func() {
		resp, err := c.submitTo(actx, url, body)
		if err != nil {
			cancel()
			results <- submitResult{node: node, err: err}
			return
		}
		resp.Body = &cancelOnClose{ReadCloser: resp.Body, cancel: cancel}
		results <- submitResult{resp: resp, node: node}
	}()
}

// submitHedged posts a job to its owner and, when hedging is enabled and
// the owner is slow, races a second attempt against the next healthy
// backend. The first conclusive answer (anything but a transport error,
// backpressure, or a 5xx) wins; the straggler is reaped in the background.
// Returns the winning response and the node that produced it.
func (c *Coordinator) submitHedged(ctx context.Context, tj *trackedJob, node, url string) (*http.Response, string, error) {
	delay := c.hedgeDelay()
	if delay <= 0 {
		resp, err := c.submitTo(ctx, url, tj.body)
		return resp, node, err
	}
	results := make(chan submitResult, 2)
	c.launchSubmit(ctx, node, url, tj.body, results)
	outstanding := 1
	hedgeNode := ""
	timer := time.NewTimer(delay)
	defer timer.Stop()
	var last submitResult
	for {
		select {
		case <-ctx.Done():
			// The in-flight submits hold ctx too and will fail promptly;
			// the results channel is buffered so they never block.
			return nil, node, ctx.Err()
		case <-timer.C:
			hNode, hURL, ok := c.nextBackend(node)
			if !ok || outstanding != 1 {
				continue
			}
			hedgeNode = hNode
			c.hedges.Inc()
			c.launchSubmit(ctx, hNode, hURL, tj.body, results)
			outstanding++
			c.log.Info("hedged submit", "job_id", tj.id, "owner", node,
				"hedge", hNode, "after", delay)
		case r := <-results:
			outstanding--
			conclusive := r.err == nil &&
				r.resp.StatusCode != http.StatusTooManyRequests &&
				r.resp.StatusCode < 500
			if conclusive {
				if outstanding > 0 {
					go func() { // reap the straggler when it lands
						if s := <-results; s.resp != nil {
							io.Copy(io.Discard, io.LimitReader(s.resp.Body, maxBody))
							s.resp.Body.Close()
						}
					}()
				}
				if hedgeNode != "" && r.node == hedgeNode {
					c.hedgeWins.Inc()
				}
				return r.resp, r.node, nil
			}
			if r.resp != nil {
				io.Copy(io.Discard, io.LimitReader(r.resp.Body, 4096))
				r.resp.Body.Close()
			}
			last = r
			if outstanding == 0 {
				if last.err != nil {
					return nil, last.node, last.err
				}
				// Both attempts got pushback; surface it as a transport-level
				// failure and let place's backoff retry.
				return nil, last.node, fmt.Errorf("%s answered %d (hedged)", last.node, lastStatus(last))
			}
		}
	}
}

// lastStatus extracts a status code from a failed attempt for the error
// message (0 when the attempt never produced a response).
func lastStatus(r submitResult) int {
	if r.resp != nil {
		return r.resp.StatusCode
	}
	return 0
}

// rerouteFrom replays every unfinished job owned by a dead worker onto the
// survivors. Zero-lost is the contract the e2e campaign asserts: a job is
// only dropped if no healthy worker accepts it within placeAttempts.
func (c *Coordinator) rerouteFrom(dead string) {
	c.mu.Lock()
	var moving []*trackedJob
	for _, tj := range c.jobs {
		if tj.node == dead && !tj.done {
			moving = append(moving, tj)
		}
	}
	c.mu.Unlock()
	if len(moving) == 0 {
		return
	}
	c.log.Warn("rerouting jobs", "from", dead, "jobs", len(moving))
	for _, tj := range moving {
		ctx, cancel := context.WithTimeout(context.Background(), c.opts.ProxyTimeout)
		resp, err := c.place(ctx, tj)
		cancel()
		if err != nil {
			// The job stays tracked on the dead node; the next health-state
			// change or client poll retries it.
			c.log.Error("reroute failed", "job_id", tj.id, "err", err)
			continue
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		c.reroutes.Inc()
		c.log.Info("job rerouted", "job_id", tj.id, "from", dead, "to", tj.node)
	}
}
