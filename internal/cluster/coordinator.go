// Package cluster turns N independent cpelide-server processes into one
// experiment farm. A Coordinator fronts the workers: submissions are routed
// by their content hash through a Maglev table (weighted, minimal disruption
// on membership change), worker health is polled continuously, and jobs
// tracked on a dead worker are resubmitted to the surviving ones. Because
// job IDs are content hashes of deterministic simulations, re-execution
// after a reroute returns byte-identical results — the cluster offers
// at-most-once observable semantics without distributed consensus. Workers
// pointed at one shared diskstore directory make reroutes and restarts
// cheap: the new owner usually finds the result already on disk.
package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/cluster/maglev"
	"repro/internal/metrics"
)

// Sentinel errors for routing failures; test with errors.Is.
var (
	// ErrNoWorkers means no healthy worker is registered to take a job.
	ErrNoWorkers = errors.New("cluster: no healthy workers")
	// ErrJobLost means a job could not be placed on any worker despite
	// retries; callers should resubmit.
	ErrJobLost = errors.New("cluster: job lost")
)

// Options tunes a Coordinator. The zero value is production-usable.
type Options struct {
	// TableSize is the Maglev lookup-table size; 0 uses maglev.SmallM.
	// Must be prime.
	TableSize uint64
	// HealthInterval paces the worker health loop (default 250ms).
	HealthInterval time.Duration
	// FailThreshold is how many consecutive failed probes mark a worker
	// dead (default 2).
	FailThreshold int
	// ProxyTimeout bounds each proxied request (default 30s). Simulations
	// run asynchronously on the worker, so this only covers the HTTP
	// round-trip, not job execution.
	ProxyTimeout time.Duration
	// Metrics, when non-nil, receives the cluster series. Nil disables.
	Metrics *metrics.Registry
	// Logger receives structured logs; nil discards.
	Logger *slog.Logger
}

// workerState is one registered worker plus its health bookkeeping.
type workerState struct {
	Worker
	healthy bool
	fails   int // consecutive failed probes
}

// trackedJob is one submission the coordinator has placed. The original
// body is kept so the job can be replayed verbatim on another worker if its
// owner dies before the result is fetched.
type trackedJob struct {
	id   string
	body []byte
	node string
	done bool
}

// Coordinator routes jobs to workers and keeps them placed across failures.
type Coordinator struct {
	opts Options
	hc   *http.Client
	log  *slog.Logger
	reg  *metrics.Registry

	mu      sync.Mutex
	table   *maglev.Table
	workers map[string]*workerState
	jobs    map[string]*trackedJob

	routed      map[string]*metrics.Counter // per-node jobs routed
	reroutes    *metrics.Counter
	proxyErrors *metrics.Counter
	remapped    *metrics.Counter
	rebuilds    *metrics.Counter

	healthWG   sync.WaitGroup
	healthStop chan struct{}
}

// NewCoordinator builds a coordinator and starts its health loop. Call
// Close to stop it.
func NewCoordinator(o Options) (*Coordinator, error) {
	if o.TableSize == 0 {
		o.TableSize = maglev.SmallM
	}
	if o.HealthInterval <= 0 {
		o.HealthInterval = 250 * time.Millisecond
	}
	if o.FailThreshold <= 0 {
		o.FailThreshold = 2
	}
	if o.ProxyTimeout <= 0 {
		o.ProxyTimeout = 30 * time.Second
	}
	t, err := maglev.New(o.TableSize)
	if err != nil {
		return nil, err
	}
	log := o.Logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	c := &Coordinator{
		opts:       o,
		hc:         &http.Client{Timeout: o.ProxyTimeout},
		log:        log,
		reg:        o.Metrics,
		table:      t,
		workers:    make(map[string]*workerState),
		jobs:       make(map[string]*trackedJob),
		routed:     make(map[string]*metrics.Counter),
		healthStop: make(chan struct{}),
	}
	c.reroutes = c.reg.Counter("cluster_reroutes_total",
		"Jobs replayed onto a surviving worker after their owner died.")
	c.proxyErrors = c.reg.Counter("cluster_proxy_errors_total",
		"Failed round-trips to workers (the request may still succeed on retry).")
	c.remapped = c.reg.Counter("cluster_maglev_remapped_slots_total",
		"Lookup-table slots that changed owner across all rebuilds.")
	c.rebuilds = c.reg.Counter("cluster_maglev_rebuilds_total",
		"Maglev table rebuilds from membership or health changes.")
	c.reg.GaugeFunc("cluster_workers_healthy", "Registered workers currently passing health checks.", func() int64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		n := int64(0)
		for _, w := range c.workers {
			if w.healthy {
				n++
			}
		}
		return n
	})
	c.reg.GaugeFunc("cluster_workers_total", "Registered workers, healthy or not.", func() int64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return int64(len(c.workers))
	})
	c.reg.GaugeFunc("cluster_jobs_tracked", "Jobs the coordinator has placed and still remembers.", func() int64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return int64(len(c.jobs))
	})
	c.reg.GaugeFunc("cluster_jobs_inflight", "Tracked jobs not yet observed done.", func() int64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		n := int64(0)
		for _, j := range c.jobs {
			if !j.done {
				n++
			}
		}
		return n
	})
	c.healthWG.Add(1)
	go c.healthLoop()
	return c, nil
}

// Close stops the health loop. In-flight proxied requests finish on their
// own timeouts.
func (c *Coordinator) Close() {
	close(c.healthStop)
	c.healthWG.Wait()
}

// routedCounter returns the per-node routing counter, creating the labeled
// series on first use.
func (c *Coordinator) routedCounter(node string) *metrics.Counter {
	if ctr, ok := c.routed[node]; ok {
		return ctr
	}
	ctr := c.reg.Counter(fmt.Sprintf("cluster_jobs_routed_total{node=%q}", node),
		"Jobs routed to each worker.")
	c.routed[node] = ctr
	return ctr
}

// rebuildLocked reprograms the Maglev table from the currently healthy
// workers. Callers hold c.mu.
func (c *Coordinator) rebuildLocked() {
	weights := make(map[string]int)
	for name, w := range c.workers {
		if w.healthy {
			weights[name] = w.Weight
		}
	}
	moved, err := c.table.Apply(weights)
	if err != nil {
		// Apply only fails on invalid weights, which registration rejects.
		c.log.Error("maglev rebuild", "err", err)
		return
	}
	c.rebuilds.Inc()
	c.remapped.Add(uint64(moved))
	c.log.Info("maglev rebuilt", "healthy", len(weights), "remapped_slots", moved)
}

// Register adds or updates a worker and reprograms the routing table.
func (c *Coordinator) Register(w Worker) error {
	if w.Name == "" || w.URL == "" {
		return fmt.Errorf("cluster: registration needs name and url, got %+v", w)
	}
	if w.Weight <= 0 {
		w.Weight = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.workers[w.Name] = &workerState{Worker: w, healthy: true}
	c.rebuildLocked()
	c.log.Info("worker registered", "node", w.Name, "url", w.URL, "weight", w.Weight)
	return nil
}

// Deregister removes a worker (clean shutdown path) and reroutes its jobs.
func (c *Coordinator) Deregister(name string) bool {
	c.mu.Lock()
	_, ok := c.workers[name]
	delete(c.workers, name)
	if ok {
		c.rebuildLocked()
	}
	c.mu.Unlock()
	if ok {
		c.log.Info("worker deregistered", "node", name)
		c.rerouteFrom(name)
	}
	return ok
}

// Workers snapshots the registered workers and their health.
func (c *Coordinator) Workers() []WorkerStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]WorkerStatus, 0, len(c.workers))
	for _, w := range c.workers {
		out = append(out, WorkerStatus{Worker: w.Worker, Healthy: w.healthy})
	}
	return out
}

// WorkerStatus is one row of the GET /v1/workers listing.
type WorkerStatus struct {
	Worker
	Healthy bool `json:"healthy"`
}

// routeKey folds a content-hash job ID into the Maglev keyspace using its
// leading 16 hex digits (64 bits of SHA-256 is plenty for load spreading).
func routeKey(id string) uint64 {
	if len(id) > 16 {
		id = id[:16]
	}
	v, err := strconv.ParseUint(id, 16, 64)
	if err != nil {
		// Non-hash IDs can only come from hand-built requests; any stable
		// fold keeps them routable.
		var h uint64 = 14695981039346656037
		for i := 0; i < len(id); i++ {
			h = (h ^ uint64(id[i])) * 1099511628211
		}
		return h
	}
	return v
}

// ownerOf resolves a job ID to its current owner.
func (c *Coordinator) ownerOf(id string) (name, url string, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	node, ok := c.table.Lookup(routeKey(id))
	if !ok {
		return "", "", ErrNoWorkers
	}
	w := c.workers[node]
	if w == nil {
		return "", "", ErrNoWorkers
	}
	return node, w.URL, nil
}

// noteFailure records one failed round-trip to a worker; at FailThreshold
// consecutive failures the worker is marked dead, the table reconverges,
// and its jobs are replayed elsewhere.
func (c *Coordinator) noteFailure(node string) {
	c.proxyErrors.Inc()
	c.mu.Lock()
	w := c.workers[node]
	dead := false
	if w != nil && w.healthy {
		w.fails++
		if w.fails >= c.opts.FailThreshold {
			w.healthy = false
			dead = true
			c.rebuildLocked()
		}
	}
	c.mu.Unlock()
	if dead {
		c.log.Warn("worker marked dead", "node", node)
		c.rerouteFrom(node)
	}
}

// noteSuccess clears a worker's consecutive-failure count and, if it was
// dead, brings it back and reconverges the table.
func (c *Coordinator) noteSuccess(node string) {
	c.mu.Lock()
	w := c.workers[node]
	revived := false
	if w != nil {
		w.fails = 0
		if !w.healthy {
			w.healthy = true
			revived = true
			c.rebuildLocked()
		}
	}
	c.mu.Unlock()
	if revived {
		c.log.Info("worker revived", "node", node)
	}
}

// healthLoop probes every worker's /healthz at HealthInterval.
func (c *Coordinator) healthLoop() {
	defer c.healthWG.Done()
	tick := time.NewTicker(c.opts.HealthInterval)
	defer tick.Stop()
	for {
		select {
		case <-c.healthStop:
			return
		case <-tick.C:
		}
		c.mu.Lock()
		targets := make(map[string]string, len(c.workers))
		for name, w := range c.workers {
			targets[name] = w.URL
		}
		c.mu.Unlock()
		for name, url := range targets {
			req, err := http.NewRequest(http.MethodGet, url+"/healthz", nil)
			if err != nil {
				c.noteFailure(name)
				continue
			}
			resp, err := c.hc.Do(req)
			if err != nil {
				c.noteFailure(name)
				continue
			}
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				c.noteSuccess(name)
			} else {
				// A draining worker answers 503: stop routing new jobs to
				// it and move its unfinished ones.
				c.noteFailure(name)
			}
		}
	}
}

// placeAttempts bounds how many distinct placements a job gets before it is
// reported lost; backoff between attempts is full-jitter exponential.
const (
	placeAttempts  = 5
	placeBaseDelay = 50 * time.Millisecond
)

// place submits a tracked job to its current owner, retrying (and letting
// failure-driven table rebuilds pick new owners) until a worker accepts it.
func (c *Coordinator) place(ctx context.Context, tj *trackedJob) (*http.Response, error) {
	var last error
	for attempt := 0; attempt < placeAttempts; attempt++ {
		if attempt > 0 {
			delay := placeBaseDelay << (attempt - 1)
			select {
			case <-ctx.Done():
				return nil, fmt.Errorf("%w: %s: %v (last: %v)", ErrJobLost, tj.id, ctx.Err(), last)
			case <-time.After(time.Duration(rand.Int63n(int64(delay) + 1))):
			}
		}
		node, url, err := c.ownerOf(tj.id)
		if err != nil {
			last = err
			continue
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			url+"/v1/jobs", bytes.NewReader(tj.body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := c.hc.Do(req)
		if err != nil {
			last = err
			c.noteFailure(node)
			continue
		}
		switch {
		case resp.StatusCode < 300:
			c.mu.Lock()
			tj.node = node
			c.jobs[tj.id] = tj
			c.routedCounter(node).Inc()
			c.mu.Unlock()
			c.noteSuccess(node)
			return resp, nil
		case resp.StatusCode == http.StatusTooManyRequests ||
			resp.StatusCode == http.StatusServiceUnavailable:
			// Backpressure or drain: same worker may accept after backoff,
			// or the health loop reroutes around it.
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			last = fmt.Errorf("%s answered %d", node, resp.StatusCode)
			c.proxyErrors.Inc()
		case resp.StatusCode >= 500:
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			last = fmt.Errorf("%s answered %d", node, resp.StatusCode)
			c.noteFailure(node)
		default:
			// 4xx is the client's problem; pass it through untouched.
			return resp, nil
		}
	}
	return nil, fmt.Errorf("%w: %s after %d attempts: %v", ErrJobLost, tj.id, placeAttempts, last)
}

// rerouteFrom replays every unfinished job owned by a dead worker onto the
// survivors. Zero-lost is the contract the e2e campaign asserts: a job is
// only dropped if no healthy worker accepts it within placeAttempts.
func (c *Coordinator) rerouteFrom(dead string) {
	c.mu.Lock()
	var moving []*trackedJob
	for _, tj := range c.jobs {
		if tj.node == dead && !tj.done {
			moving = append(moving, tj)
		}
	}
	c.mu.Unlock()
	if len(moving) == 0 {
		return
	}
	c.log.Warn("rerouting jobs", "from", dead, "jobs", len(moving))
	for _, tj := range moving {
		ctx, cancel := context.WithTimeout(context.Background(), c.opts.ProxyTimeout)
		resp, err := c.place(ctx, tj)
		cancel()
		if err != nil {
			// The job stays tracked on the dead node; the next health-state
			// change or client poll retries it.
			c.log.Error("reroute failed", "job_id", tj.id, "err", err)
			continue
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		c.reroutes.Inc()
		c.log.Info("job rerouted", "job_id", tj.id, "from", dead, "to", tj.node)
	}
}
