package journal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func openT(t *testing.T, path string) *Journal {
	t.Helper()
	j, err := Open(path, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j
}

func body(i int) []byte {
	return []byte(fmt.Sprintf(`{"workload":"square","scale":%g}`, 0.05+float64(i)*1e-4))
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	j := openT(t, path)
	for i := 0; i < 10; i++ {
		if err := j.Accept(fmt.Sprintf("job%02d", i), body(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i += 2 {
		if err := j.Done(fmt.Sprintf("job%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Worker("w1", []byte(`{"name":"w1","url":"http://a"}`)); err != nil {
		t.Fatal(err)
	}
	if err := j.Worker("w2", []byte(`{"name":"w2","url":"http://b"}`)); err != nil {
		t.Fatal(err)
	}
	if err := j.WorkerGone("w2"); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2 := openT(t, path)
	pend := j2.PendingJobs()
	if len(pend) != 5 {
		t.Fatalf("recovered %d pending jobs, want 5", len(pend))
	}
	for i := 1; i < 10; i += 2 {
		id := fmt.Sprintf("job%02d", i)
		if !bytes.Equal(pend[id], body(i)) {
			t.Errorf("job %s body = %q, want %q", id, pend[id], body(i))
		}
	}
	ws := j2.Workers()
	if len(ws) != 1 || ws["w1"] == nil {
		t.Fatalf("recovered workers = %v, want just w1", ws)
	}
	st := j2.Stats()
	if st.RecoveredJobs != 5 || st.RecoveredWorkers != 1 || st.TruncatedBytes != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestTruncatedTail cuts the file mid-way through the last record — a crash
// during a write — and verifies every complete record is recovered, the tail
// is cleaned away, and appends work afterward.
func TestTruncatedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	j := openT(t, path)
	for i := 0; i < 5; i++ {
		if err := j.Accept(fmt.Sprintf("job%02d", i), body(i)); err != nil {
			t.Fatal(err)
		}
	}
	sizeAt4 := j.Size() // size before... we need size after 4 records
	_ = sizeAt4
	j.Close()

	// Cut 3 bytes off the end: the last record becomes a torn frame.
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	j2 := openT(t, path)
	pend := j2.PendingJobs()
	if len(pend) != 4 {
		t.Fatalf("recovered %d jobs after torn tail, want 4", len(pend))
	}
	if _, torn := pend["job04"]; torn {
		t.Fatal("the torn record must not be recovered")
	}
	if st := j2.Stats(); st.TruncatedBytes == 0 {
		t.Fatalf("stats = %+v, want TruncatedBytes > 0", st)
	}
	// The journal is clean for appends: re-accept the torn job and reopen.
	if err := j2.Accept("job04", body(4)); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3 := openT(t, path)
	if got := len(j3.PendingJobs()); got != 5 {
		t.Fatalf("after re-accept and reopen: %d jobs, want 5", got)
	}
}

// TestTornMidRecord flips bytes inside an interior record's payload (a torn
// multi-sector write): replay must keep everything before the tear and drop
// the tear and everything after it — the journal never trusts bytes past a
// failed checksum.
func TestTornMidRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	j := openT(t, path)
	var offsets []int64
	for i := 0; i < 5; i++ {
		offsets = append(offsets, j.Size())
		if err := j.Accept(fmt.Sprintf("job%02d", i), body(i)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	// Corrupt one byte inside record 3's payload.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	pos := offsets[3] + 12 // 8-byte header + 4 bytes into the payload
	raw[pos] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	j2 := openT(t, path)
	pend := j2.PendingJobs()
	if len(pend) != 3 {
		t.Fatalf("recovered %d jobs after mid-record tear, want 3", len(pend))
	}
	for i := 0; i < 3; i++ {
		if pend[fmt.Sprintf("job%02d", i)] == nil {
			t.Errorf("job%02d lost; records before the tear must survive", i)
		}
	}
	if st := j2.Stats(); st.TruncatedBytes == 0 {
		t.Fatalf("stats = %+v, want TruncatedBytes > 0", st)
	}
}

// TestGarbageLength writes a frame header claiming an absurd length; replay
// must treat it as torn rather than allocating or walking past the file.
func TestGarbageLength(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	j := openT(t, path)
	if err := j.Accept("job00", body(0)); err != nil {
		t.Fatal(err)
	}
	j.Close()

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], 1<<30)
	if _, err := f.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2 := openT(t, path)
	if got := len(j2.PendingJobs()); got != 1 {
		t.Fatalf("recovered %d jobs, want 1", got)
	}
}

// TestDuplicateTerminal: duplicate done records, done-before-accept, and
// re-accept-after-done must all replay to the same state — replay is
// idempotent because results are content-addressed.
func TestDuplicateTerminal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	j := openT(t, path)
	if err := j.Done("jobX"); err != nil { // terminal for an unknown job
		t.Fatal(err)
	}
	if err := j.Accept("jobX", body(0)); err != nil { // late accept: stays done
		t.Fatal(err)
	}
	if err := j.Accept("jobY", body(1)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Done("jobY"); err != nil { // duplicates are free
			t.Fatal(err)
		}
	}
	if err := j.Accept("jobZ", body(2)); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2 := openT(t, path)
	pend := j2.PendingJobs()
	if len(pend) != 1 || pend["jobZ"] == nil {
		t.Fatalf("pending = %v, want just jobZ", pend)
	}
}

// TestCompact verifies explicit compaction drops terminal history, keeps
// live state, shrinks the file, and survives a reopen.
func TestCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	j := openT(t, path)
	if err := j.Worker("w1", []byte(`{"name":"w1"}`)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		id := fmt.Sprintf("job%02d", i)
		if err := j.Accept(id, body(i)); err != nil {
			t.Fatal(err)
		}
		if i < 45 {
			if err := j.Done(id); err != nil {
				t.Fatal(err)
			}
		}
	}
	before := j.Size()
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	after := j.Size()
	if after >= before {
		t.Fatalf("compaction did not shrink the log: %d -> %d", before, after)
	}
	if got := len(j.PendingJobs()); got != 5 {
		t.Fatalf("pending after compact = %d, want 5", got)
	}
	// Appends keep working on the swapped handle.
	if err := j.Accept("jobzz", body(99)); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2 := openT(t, path)
	if got := len(j2.PendingJobs()); got != 6 {
		t.Fatalf("pending after reopen = %d, want 6", got)
	}
	if ws := j2.Workers(); len(ws) != 1 {
		t.Fatalf("workers after reopen = %v, want w1", ws)
	}
}

// TestAutoCompact: crossing the CompactAt threshold compacts inline.
func TestAutoCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	j, err := Open(path, Options{NoSync: true, CompactAt: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for i := 0; i < 200; i++ {
		id := fmt.Sprintf("job%03d", i)
		if err := j.Accept(id, body(i)); err != nil {
			t.Fatal(err)
		}
		if err := j.Done(id); err != nil {
			t.Fatal(err)
		}
	}
	if st := j.Stats(); st.Compactions == 0 {
		t.Fatalf("stats = %+v, want automatic compactions", st)
	}
	if j.Size() > 4096 {
		t.Fatalf("log is %d bytes despite auto-compaction at 2048", j.Size())
	}
}

// TestEmptyAndMissing: opening a missing path creates it; an empty file is a
// valid empty journal.
func TestEmptyAndMissing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	j := openT(t, path)
	if len(j.PendingJobs()) != 0 || len(j.Workers()) != 0 {
		t.Fatal("fresh journal is not empty")
	}
	if _, err := Open("", Options{}); err == nil {
		t.Fatal("empty path accepted")
	}
}
