// Package journal is the coordinator's write-ahead log: every accepted job
// body, every observed terminal state, and every worker-membership change is
// appended to one file before it is acted on, so a coordinator that is
// SIGKILLed mid-campaign restarts with its tracked-job table and worker set
// intact and replays the unfinished jobs verbatim. Because job IDs are
// content hashes of deterministic simulations, replay after a crash binds
// the same key to the same bytes — recovery costs at most a recomputation,
// never a wrong answer.
//
// Record framing is length-prefixed and checksummed:
//
//	[4 bytes: payload length, little-endian]
//	[4 bytes: CRC-32C (Castagnoli) of the payload, little-endian]
//	[payload: one JSON Record]
//
// Replay walks frames from the start and stops at the first frame that is
// short, oversized, or fails its checksum — the torn tail of a crashed
// write — truncating the file there so the journal is clean for appends.
// Everything before the tear is recovered. Records are idempotent: a
// duplicate accept, a duplicate terminal record, or a terminal record for an
// unknown job all replay cleanly (results are content-addressed, so doing a
// job twice is safe and doing it zero times after it finished is correct).
//
// Appends are fsynced by default; Compact rewrites the live state (current
// worker set plus still-pending jobs) through a temp file and atomic rename
// when the log outgrows Options.CompactAt.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// RecordType tags one journal entry. It is a defined type so the cpelint
// exhaustive pass can prove every replay switch handles every record kind —
// a silently skipped type during recovery is exactly the bug a WAL exists
// to prevent.
type RecordType string

// Record types. Accept carries the job body; Done only the ID. Worker and
// WorkerGone track cluster membership so a restarted coordinator knows whom
// to replay onto before anyone re-registers.
const (
	TypeAccept     RecordType = "accept"
	TypeDone       RecordType = "done"
	TypeWorker     RecordType = "worker"
	TypeWorkerGone RecordType = "worker-gone"
)

// Record is one journal entry's payload.
type Record struct {
	Type RecordType      `json:"t"`
	ID   string          `json:"id,omitempty"`
	Body json.RawMessage `json:"body,omitempty"`
}

// maxRecord bounds one record's payload; anything larger is treated as a
// torn frame (job bodies are capped well below this by the coordinator).
const maxRecord = 4 << 20

// DefaultCompactAt is the log-size threshold that triggers automatic
// compaction when Options.CompactAt is zero.
const DefaultCompactAt = 4 << 20

// ErrTorn marks a frame that failed its length or checksum validation during
// replay; the journal truncates there and keeps going. Exposed for tests.
var ErrTorn = errors.New("journal: torn record")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Options tunes a Journal. The zero value is production-usable.
type Options struct {
	// CompactAt is the file size (bytes) beyond which an append triggers
	// compaction. 0 uses DefaultCompactAt; negative disables automatic
	// compaction (Compact can still be called explicitly).
	CompactAt int64
	// NoSync skips the fsync after each append (tests only; a production
	// journal that loses its tail loses the jobs accepted in that tail).
	NoSync bool
}

// Stats counts what the journal has done since Open.
type Stats struct {
	// Appends counts records written (not bytes).
	Appends uint64 `json:"appends"`
	// Compactions counts log rewrites, automatic and explicit.
	Compactions uint64 `json:"compactions"`
	// RecoveredJobs is how many pending (accepted, not terminal) jobs the
	// opening replay produced.
	RecoveredJobs int `json:"recovered_jobs"`
	// RecoveredWorkers is how many workers the opening replay produced.
	RecoveredWorkers int `json:"recovered_workers"`
	// TruncatedBytes is how many torn-tail bytes replay cut off.
	TruncatedBytes int64 `json:"truncated_bytes"`
}

// Journal is an append-only, checksummed record of coordinator state.
// Methods are safe for concurrent use.
type Journal struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	size   int64
	opts   Options
	closed bool

	// Live state, mirrored from the record stream so Compact can rewrite
	// the log from scratch and PendingJobs can answer without a re-scan.
	pending map[string]json.RawMessage // job id -> original body
	done    map[string]bool            // terminal ids (cleared by Compact)
	workers map[string]json.RawMessage // worker name -> registration body

	s Stats
}

// Open replays the journal at path (creating it if absent) and returns it
// ready for appends. A torn tail — a crash mid-write — is truncated away;
// everything before it is recovered.
func Open(path string, opts Options) (*Journal, error) {
	if path == "" {
		return nil, errors.New("journal: empty path")
	}
	if opts.CompactAt == 0 {
		opts.CompactAt = DefaultCompactAt
	}
	j := &Journal{
		path:    path,
		opts:    opts,
		pending: make(map[string]json.RawMessage),
		done:    make(map[string]bool),
		workers: make(map[string]json.RawMessage),
	}
	if err := j.replay(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: open %s: %w", path, err)
	}
	j.f = f
	j.s.RecoveredJobs = len(j.pending)
	j.s.RecoveredWorkers = len(j.workers)
	return j, nil
}

// replay scans the existing file, applies every valid record, and truncates
// at the first torn frame.
func (j *Journal) replay() error {
	b, err := os.ReadFile(j.path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("journal: replay %s: %w", j.path, err)
	}
	off := 0
	for {
		rec, n, err := decodeFrame(b[off:])
		if err != nil {
			if errors.Is(err, io.EOF) {
				break // clean end
			}
			// Torn tail: keep the prefix, cut the rest.
			torn := int64(len(b) - off)
			if terr := os.Truncate(j.path, int64(off)); terr != nil {
				return fmt.Errorf("journal: truncate torn tail of %s: %w", j.path, terr)
			}
			j.s.TruncatedBytes += torn
			break
		}
		j.apply(rec)
		off += n
	}
	j.size = int64(off)
	return nil
}

// decodeFrame parses one frame from b. Returns io.EOF when b is empty and
// ErrTorn (wrapped) for any malformed frame.
func decodeFrame(b []byte) (Record, int, error) {
	var rec Record
	if len(b) == 0 {
		return rec, 0, io.EOF
	}
	if len(b) < 8 {
		return rec, 0, fmt.Errorf("%w: %d-byte header", ErrTorn, len(b))
	}
	n := binary.LittleEndian.Uint32(b[0:4])
	sum := binary.LittleEndian.Uint32(b[4:8])
	if n == 0 || n > maxRecord || len(b) < 8+int(n) {
		return rec, 0, fmt.Errorf("%w: length %d with %d bytes left", ErrTorn, n, len(b)-8)
	}
	payload := b[8 : 8+n]
	if crc32.Checksum(payload, crcTable) != sum {
		return rec, 0, fmt.Errorf("%w: checksum mismatch", ErrTorn)
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, 0, fmt.Errorf("%w: %v", ErrTorn, err)
	}
	return rec, 8 + int(n), nil
}

// apply folds one record into the live state. Idempotent by construction.
func (j *Journal) apply(rec Record) {
	switch rec.Type {
	case TypeAccept:
		if rec.ID != "" && !j.done[rec.ID] {
			j.pending[rec.ID] = rec.Body
		}
	case TypeDone:
		if rec.ID != "" {
			j.done[rec.ID] = true
			delete(j.pending, rec.ID)
		}
	case TypeWorker:
		if rec.ID != "" {
			j.workers[rec.ID] = rec.Body
		}
	case TypeWorkerGone:
		if rec.ID != "" {
			delete(j.workers, rec.ID)
		}
	}
	// Unknown types are skipped: an older binary replaying a newer journal
	// recovers everything it understands.
}

// append frames, writes, and optionally fsyncs one record, then compacts if
// the log has outgrown its threshold. Caller holds j.mu.
func (j *Journal) append(rec Record) error {
	if j.closed {
		return errors.New("journal: closed")
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: encode record: %w", err)
	}
	if len(payload) > maxRecord {
		return fmt.Errorf("journal: record %d bytes exceeds %d", len(payload), maxRecord)
	}
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, crcTable))
	copy(frame[8:], payload)
	if _, err := j.f.Write(frame); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	if !j.opts.NoSync {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("journal: sync: %w", err)
		}
	}
	j.size += int64(len(frame))
	j.s.Appends++
	j.apply(rec)
	if j.opts.CompactAt > 0 && j.size > j.opts.CompactAt {
		return j.compactLocked()
	}
	return nil
}

// Accept journals one accepted job: its content-hash ID and the verbatim
// request body, so the job can be replayed bit-for-bit after a crash.
func (j *Journal) Accept(id string, body []byte) error {
	if id == "" {
		return errors.New("journal: accept with empty id")
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.done[id] || j.pending[id] != nil {
		return nil // already journaled; resubmits are free
	}
	return j.append(Record{Type: TypeAccept, ID: id, Body: body})
}

// Done journals a job's terminal state. Duplicate and unknown IDs are
// accepted silently — terminal records are idempotent.
func (j *Journal) Done(id string) error {
	if id == "" {
		return errors.New("journal: done with empty id")
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.done[id] {
		return nil
	}
	return j.append(Record{Type: TypeDone, ID: id})
}

// Worker journals a worker registration (or update) under name.
func (j *Journal) Worker(name string, body []byte) error {
	if name == "" {
		return errors.New("journal: worker with empty name")
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.append(Record{Type: TypeWorker, ID: name, Body: body})
}

// WorkerGone journals a worker's clean departure.
func (j *Journal) WorkerGone(name string) error {
	if name == "" {
		return errors.New("journal: worker-gone with empty name")
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.append(Record{Type: TypeWorkerGone, ID: name})
}

// PendingJobs returns the accepted-but-not-terminal jobs as id -> body, a
// copy safe to mutate. After Open this is the crash-recovery work list.
func (j *Journal) PendingJobs() map[string][]byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make(map[string][]byte, len(j.pending))
	for id, body := range j.pending {
		out[id] = append([]byte(nil), body...)
	}
	return out
}

// Workers returns the journaled worker set as name -> registration body.
func (j *Journal) Workers() map[string][]byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make(map[string][]byte, len(j.workers))
	for name, body := range j.workers {
		out[name] = append([]byte(nil), body...)
	}
	return out
}

// Size returns the journal file's current length in bytes.
func (j *Journal) Size() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.size
}

// Stats returns a snapshot of the journal's tallies.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.s
}

// Compact rewrites the journal to just its live state: the current worker
// set and the still-pending jobs, in sorted order for deterministic bytes.
// Terminal-record history is dropped (it only existed to cancel accepts).
func (j *Journal) Compact() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.compactLocked()
}

// compactLocked writes live state to a temp file, fsyncs it, atomically
// renames it over the log, and reopens the append handle. Caller holds j.mu.
func (j *Journal) compactLocked() error {
	if j.closed {
		return errors.New("journal: closed")
	}
	dir := filepath.Dir(j.path)
	tmp, err := os.CreateTemp(dir, ".journal-compact-*")
	if err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename

	var size int64
	writeRec := func(rec Record) error {
		payload, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		frame := make([]byte, 8+len(payload))
		binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, crcTable))
		copy(frame[8:], payload)
		n, err := tmp.Write(frame)
		size += int64(n)
		return err
	}
	for _, name := range sortedKeys(j.workers) {
		if err := writeRec(Record{Type: TypeWorker, ID: name, Body: j.workers[name]}); err != nil {
			tmp.Close()
			return fmt.Errorf("journal: compact: %w", err)
		}
	}
	for _, id := range sortedKeys(j.pending) {
		if err := writeRec(Record{Type: TypeAccept, ID: id, Body: j.pending[id]}); err != nil {
			tmp.Close()
			return fmt.Errorf("journal: compact: %w", err)
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("journal: compact sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("journal: compact close: %w", err)
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		return fmt.Errorf("journal: compact rename: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return err
	}
	// Swap the append handle to the new file.
	if err := j.f.Close(); err != nil {
		return fmt.Errorf("journal: compact: close old handle: %w", err)
	}
	f, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal: compact reopen: %w", err)
	}
	j.f = f
	j.size = size
	j.done = make(map[string]bool)
	j.s.Compactions++
	return nil
}

// Close syncs and closes the journal file. Further appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if !j.opts.NoSync {
		if err := j.f.Sync(); err != nil {
			j.f.Close()
			return fmt.Errorf("journal: close sync: %w", err)
		}
	}
	if err := j.f.Close(); err != nil {
		return fmt.Errorf("journal: close: %w", err)
	}
	return nil
}

// syncDir fsyncs a directory so a just-renamed file survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("journal: sync dir %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("journal: sync dir %s: %w", dir, err)
	}
	return nil
}

// sortedKeys returns m's keys in sorted order (deterministic compaction).
func sortedKeys(m map[string]json.RawMessage) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
