package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"time"
)

// Worker is one farm node as the coordinator sees it: a routable base URL
// and a Maglev weight (capacity share; 0 or negative means 1).
type Worker struct {
	Name   string `json:"name"`
	URL    string `json:"url"`
	Weight int    `json:"weight,omitempty"`
}

// registerBackoff paces registration retries: a worker often boots before
// its coordinator, so the client keeps knocking with full-jitter backoff.
const (
	registerAttempts  = 8
	registerBaseDelay = 100 * time.Millisecond
)

// RegisterWorker announces a worker to the coordinator, retrying with
// full-jitter exponential backoff until the coordinator answers or ctx ends.
// Registration is idempotent: re-registering the same name updates its URL
// and weight.
func RegisterWorker(ctx context.Context, hc *http.Client, coordinatorURL string, w Worker) error {
	if hc == nil {
		hc = http.DefaultClient
	}
	body, err := json.Marshal(w)
	if err != nil {
		return fmt.Errorf("cluster: encode registration: %w", err)
	}
	var last error
	for attempt := 0; attempt < registerAttempts; attempt++ {
		if attempt > 0 {
			delay := registerBaseDelay << (attempt - 1)
			jittered := time.Duration(rand.Int63n(int64(delay) + 1))
			select {
			case <-ctx.Done():
				return fmt.Errorf("cluster: register %s: %w (last: %v)", w.Name, ctx.Err(), last)
			case <-time.After(jittered):
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			coordinatorURL+"/v1/workers/register", bytes.NewReader(body))
		if err != nil {
			return fmt.Errorf("cluster: register %s: %w", w.Name, err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := hc.Do(req)
		if err != nil {
			last = err
			continue
		}
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			return nil
		}
		last = fmt.Errorf("coordinator answered %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
		// 4xx means the registration itself is bad; retrying won't help.
		if resp.StatusCode >= 400 && resp.StatusCode < 500 {
			return fmt.Errorf("cluster: register %s: %w", w.Name, last)
		}
	}
	return fmt.Errorf("cluster: register %s: gave up after %d attempts: %w",
		w.Name, registerAttempts, last)
}

// DeregisterWorker removes a worker from the coordinator's backend set, used
// for clean shutdowns so the Maglev table reconverges immediately instead of
// waiting for the health checker to notice. A missing worker is not an error.
func DeregisterWorker(ctx context.Context, hc *http.Client, coordinatorURL, name string) error {
	if hc == nil {
		hc = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete,
		coordinatorURL+"/v1/workers/"+name, nil)
	if err != nil {
		return fmt.Errorf("cluster: deregister %s: %w", name, err)
	}
	resp, err := hc.Do(req)
	if err != nil {
		return fmt.Errorf("cluster: deregister %s: %w", name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("cluster: deregister %s: coordinator answered %d: %s",
			name, resp.StatusCode, bytes.TrimSpace(msg))
	}
	return nil
}
