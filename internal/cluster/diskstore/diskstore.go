// Package diskstore is the cluster's persistent content-addressed result
// store: one JSON file per simulation report, keyed by the farm's canonical
// job hash, sharded across 256 subdirectories by the key's first byte.
//
// The store sits underneath the farm's in-memory LRU (farm.Options.Store):
// a worker that restarts warm-starts its cache from disk, and workers that
// share one store directory — a shared filesystem in a real deployment, a
// common tmpdir in the local cluster — share every computed result, so a
// job rerouted after a node failure is a store hit, not a recompute.
//
// Integrity: each entry is a versioned envelope ("diskstore/v1") carrying
// the raw report JSON plus its CRC-32C, so a bit-flipped or truncated file
// is detected on read rather than served as a "deterministic" result. A
// corrupt entry is moved to root/quarantine/ for post-mortem and reported
// as an error — the farm counts it and recomputes, so corruption degrades
// to a cache miss, never a wrong answer. Files written before the envelope
// (bare report JSON) are still readable via a legacy migration path.
//
// Concurrency and durability: writes go to a unique temp file in the store
// root, are fsynced, and are published with os.Rename followed by an fsync
// of the shard directory — readers in any process see either the complete
// report or nothing, and a published entry survives power loss, not just
// process death. Duplicate writes of the same key are idempotent —
// simulation results are deterministic, so last-rename-wins replaces equal
// bytes with equal bytes.
//
// Layout:
//
//	root/
//	  ab/
//	    ab3f...64 hex...c2.json
//	  quarantine/
//	    ab3f...64 hex...c2.json   (corrupt entries, moved aside)
package diskstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"

	"repro"
)

// ErrBadKey rejects keys that are not 64 lowercase hex characters (the
// farm's canonical SHA-256 job hash). Guards both cache aliasing and path
// traversal, since keys become file names.
var ErrBadKey = errors.New("diskstore: key is not a canonical job hash")

// ErrCorrupt marks an entry whose bytes failed integrity validation; the
// file has been quarantined by the time the error is returned.
var ErrCorrupt = errors.New("diskstore: corrupt entry")

// Schema identifies the current envelope version.
const Schema = "diskstore/v1"

// quarantineDir is where corrupt entries are moved. Its name is longer than
// a 2-character shard, so the key scan never descends into it.
const quarantineDir = "quarantine"

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// envelope is the on-disk frame: the raw report JSON plus its checksum.
// Legacy files are bare report JSON; they unmarshal into an envelope with
// an empty Schema, which is how the read path tells the two apart.
type envelope struct {
	Schema string          `json:"schema"`
	CRC    string          `json:"crc32c"`
	Report json.RawMessage `json:"report"`
}

// Store is a content-addressed on-disk report store rooted at one
// directory. Methods are safe for concurrent use across goroutines and
// across processes sharing the directory.
type Store struct {
	root string

	// OnCorrupt, when set, is called with the key of every entry that
	// fails integrity validation and is quarantined. Set it before the
	// store is shared across goroutines; it may be called concurrently.
	OnCorrupt func(key string)

	corrupt atomic.Uint64
}

// Open creates (if needed) and returns the store rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("diskstore: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("diskstore: open %s: %w", dir, err)
	}
	return &Store{root: dir}, nil
}

// Root returns the store's directory.
func (s *Store) Root() string { return s.root }

// CorruptCount reports how many entries this store handle has quarantined.
func (s *Store) CorruptCount() uint64 { return s.corrupt.Load() }

// checkKey validates the canonical-hash shape.
func checkKey(key string) error {
	if len(key) != 64 {
		return fmt.Errorf("diskstore: key %q: %w", key, ErrBadKey)
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return fmt.Errorf("diskstore: key %q: %w", key, ErrBadKey)
		}
	}
	return nil
}

// path maps a validated key to its file.
func (s *Store) path(key string) string {
	return filepath.Join(s.root, key[:2], key+".json")
}

// Get loads the report stored under key. ok is false (with a nil error)
// when the key has never been stored; a present-but-invalid entry is
// quarantined and returned as an error wrapping ErrCorrupt so callers can
// count corruption separately from misses.
func (s *Store) Get(key string) (*cpelide.Report, bool, error) {
	if err := checkKey(key); err != nil {
		return nil, false, err
	}
	b, err := os.ReadFile(s.path(key))
	if errors.Is(err, os.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("diskstore: get %s: %w", key, err)
	}
	rep, err := decode(b)
	if err != nil {
		return nil, false, s.quarantine(key, err)
	}
	return rep, true, nil
}

// decode validates and unwraps one entry's bytes, handling both the
// versioned envelope and bare legacy reports.
func decode(b []byte) (*cpelide.Report, error) {
	var env envelope
	if err := json.Unmarshal(b, &env); err != nil {
		return nil, fmt.Errorf("unparseable: %w", err)
	}
	raw := json.RawMessage(b)
	switch env.Schema {
	case "":
		// Legacy bare report: no checksum to verify, the whole file is
		// the payload.
	case Schema:
		if got := fmt.Sprintf("%08x", crc32.Checksum(env.Report, crcTable)); got != env.CRC {
			return nil, fmt.Errorf("crc32c %s, file claims %s", got, env.CRC)
		}
		raw = env.Report
	default:
		return nil, fmt.Errorf("unknown schema %q", env.Schema)
	}
	rep := new(cpelide.Report)
	if err := json.Unmarshal(raw, rep); err != nil {
		return nil, fmt.Errorf("bad report payload: %w", err)
	}
	return rep, nil
}

// quarantine moves a corrupt entry aside and returns the caller-facing
// error. The move is best-effort: if it fails the file stays put, but the
// read still fails closed.
func (s *Store) quarantine(key string, cause error) error {
	s.corrupt.Add(1)
	qdir := filepath.Join(s.root, quarantineDir)
	moveErr := os.MkdirAll(qdir, 0o755)
	if moveErr == nil {
		moveErr = os.Rename(s.path(key), filepath.Join(qdir, key+".json"))
	}
	if s.OnCorrupt != nil {
		s.OnCorrupt(key)
	}
	if moveErr != nil {
		return fmt.Errorf("diskstore: get %s: %w (%v; quarantine failed: %v)", key, ErrCorrupt, cause, moveErr)
	}
	return fmt.Errorf("diskstore: get %s: %w (%v; moved to %s/)", key, ErrCorrupt, cause, quarantineDir)
}

// Put stores rep under key, atomically replacing any existing entry. The
// entry is fsynced before and the shard directory after the publishing
// rename, so a completed Put survives power loss.
func (s *Store) Put(key string, rep *cpelide.Report) error {
	if err := checkKey(key); err != nil {
		return err
	}
	if rep == nil {
		return errors.New("diskstore: put nil report")
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		return fmt.Errorf("diskstore: put %s: %w", key, err)
	}
	b, err := json.Marshal(envelope{
		Schema: Schema,
		CRC:    fmt.Sprintf("%08x", crc32.Checksum(raw, crcTable)),
		Report: raw,
	})
	if err != nil {
		return fmt.Errorf("diskstore: put %s: %w", key, err)
	}
	shard := filepath.Join(s.root, key[:2])
	if err := os.MkdirAll(shard, 0o755); err != nil {
		return fmt.Errorf("diskstore: put %s: %w", key, err)
	}
	// Write-temp-then-rename publishes the entry atomically; the temp file
	// lives in the store root so the rename never crosses filesystems.
	tmp, err := os.CreateTemp(s.root, ".put-*")
	if err != nil {
		return fmt.Errorf("diskstore: put %s: %w", key, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		return fmt.Errorf("diskstore: put %s: %w", key, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("diskstore: put %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("diskstore: put %s: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		return fmt.Errorf("diskstore: put %s: %w", key, err)
	}
	if err := syncDir(shard); err != nil {
		return fmt.Errorf("diskstore: put %s: %w", key, err)
	}
	return nil
}

// syncDir fsyncs a directory so a rename into it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Len counts the stored entries.
func (s *Store) Len() (int, error) {
	keys, err := s.keys()
	if err != nil {
		return 0, err
	}
	return len(keys), nil
}

// QuarantineCount counts the files currently in the quarantine directory.
func (s *Store) QuarantineCount() (int, error) {
	files, err := os.ReadDir(filepath.Join(s.root, quarantineDir))
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("diskstore: scan quarantine: %w", err)
	}
	return len(files), nil
}

// entry pairs a key with its file modification time for recency ordering.
type entry struct {
	key     string
	modUnix int64
}

// keys walks the shard directories and returns every valid entry.
func (s *Store) keys() ([]entry, error) {
	shards, err := os.ReadDir(s.root)
	if err != nil {
		return nil, fmt.Errorf("diskstore: scan %s: %w", s.root, err)
	}
	var out []entry
	for _, sh := range shards {
		if !sh.IsDir() || len(sh.Name()) != 2 {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.root, sh.Name()))
		if err != nil {
			continue // shard vanished mid-scan (concurrent cleanup)
		}
		for _, f := range files {
			key, found := strings.CutSuffix(f.Name(), ".json")
			if !found || checkKey(key) != nil {
				continue
			}
			info, err := f.Info()
			if err != nil {
				continue
			}
			out = append(out, entry{key: key, modUnix: info.ModTime().UnixNano()})
		}
	}
	return out, nil
}

// RecentKeys returns up to limit stored keys, most recently written first
// (ties broken by key so the order is stable). limit <= 0 returns all. The
// farm's warm-start uses this to reload the hottest results into its LRU.
func (s *Store) RecentKeys(limit int) ([]string, error) {
	entries, err := s.keys()
	if err != nil {
		return nil, err
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].modUnix != entries[j].modUnix {
			return entries[i].modUnix > entries[j].modUnix
		}
		return entries[i].key < entries[j].key
	})
	if limit > 0 && len(entries) > limit {
		entries = entries[:limit]
	}
	keys := make([]string, len(entries))
	for i, e := range entries {
		keys[i] = e.key
	}
	return keys, nil
}
