// Package diskstore is the cluster's persistent content-addressed result
// store: one JSON file per simulation report, keyed by the farm's canonical
// job hash, sharded across 256 subdirectories by the key's first byte.
//
// The store sits underneath the farm's in-memory LRU (farm.Options.Store):
// a worker that restarts warm-starts its cache from disk, and workers that
// share one store directory — a shared filesystem in a real deployment, a
// common tmpdir in the local cluster — share every computed result, so a
// job rerouted after a node failure is a store hit, not a recompute.
//
// Concurrency: writes go to a unique temp file in the store root and are
// published with os.Rename, which is atomic on POSIX filesystems, so
// readers in any process see either the complete report or nothing.
// Duplicate writes of the same key are idempotent — simulation results are
// deterministic, so last-rename-wins replaces equal bytes with equal bytes.
//
// Layout:
//
//	root/
//	  ab/
//	    ab3f...64 hex...c2.json
package diskstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro"
)

// ErrBadKey rejects keys that are not 64 lowercase hex characters (the
// farm's canonical SHA-256 job hash). Guards both cache aliasing and path
// traversal, since keys become file names.
var ErrBadKey = errors.New("diskstore: key is not a canonical job hash")

// Store is a content-addressed on-disk report store rooted at one
// directory. Methods are safe for concurrent use across goroutines and
// across processes sharing the directory.
type Store struct {
	root string
}

// Open creates (if needed) and returns the store rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("diskstore: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("diskstore: open %s: %w", dir, err)
	}
	return &Store{root: dir}, nil
}

// Root returns the store's directory.
func (s *Store) Root() string { return s.root }

// checkKey validates the canonical-hash shape.
func checkKey(key string) error {
	if len(key) != 64 {
		return fmt.Errorf("diskstore: key %q: %w", key, ErrBadKey)
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return fmt.Errorf("diskstore: key %q: %w", key, ErrBadKey)
		}
	}
	return nil
}

// path maps a validated key to its file.
func (s *Store) path(key string) string {
	return filepath.Join(s.root, key[:2], key+".json")
}

// Get loads the report stored under key. ok is false (with a nil error)
// when the key has never been stored; a present-but-unreadable entry is an
// error so callers can count corruption separately from misses.
func (s *Store) Get(key string) (*cpelide.Report, bool, error) {
	if err := checkKey(key); err != nil {
		return nil, false, err
	}
	b, err := os.ReadFile(s.path(key))
	if errors.Is(err, os.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("diskstore: get %s: %w", key, err)
	}
	rep := new(cpelide.Report)
	if err := json.Unmarshal(b, rep); err != nil {
		return nil, false, fmt.Errorf("diskstore: get %s: corrupt entry: %w", key, err)
	}
	return rep, true, nil
}

// Put stores rep under key, atomically replacing any existing entry.
func (s *Store) Put(key string, rep *cpelide.Report) error {
	if err := checkKey(key); err != nil {
		return err
	}
	if rep == nil {
		return errors.New("diskstore: put nil report")
	}
	b, err := json.Marshal(rep)
	if err != nil {
		return fmt.Errorf("diskstore: put %s: %w", key, err)
	}
	shard := filepath.Join(s.root, key[:2])
	if err := os.MkdirAll(shard, 0o755); err != nil {
		return fmt.Errorf("diskstore: put %s: %w", key, err)
	}
	// Write-temp-then-rename publishes the entry atomically; the temp file
	// lives in the store root so the rename never crosses filesystems.
	tmp, err := os.CreateTemp(s.root, ".put-*")
	if err != nil {
		return fmt.Errorf("diskstore: put %s: %w", key, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		return fmt.Errorf("diskstore: put %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("diskstore: put %s: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		return fmt.Errorf("diskstore: put %s: %w", key, err)
	}
	return nil
}

// Len counts the stored entries.
func (s *Store) Len() (int, error) {
	keys, err := s.keys()
	if err != nil {
		return 0, err
	}
	return len(keys), nil
}

// entry pairs a key with its file modification time for recency ordering.
type entry struct {
	key     string
	modUnix int64
}

// keys walks the shard directories and returns every valid entry.
func (s *Store) keys() ([]entry, error) {
	shards, err := os.ReadDir(s.root)
	if err != nil {
		return nil, fmt.Errorf("diskstore: scan %s: %w", s.root, err)
	}
	var out []entry
	for _, sh := range shards {
		if !sh.IsDir() || len(sh.Name()) != 2 {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.root, sh.Name()))
		if err != nil {
			continue // shard vanished mid-scan (concurrent cleanup)
		}
		for _, f := range files {
			key, found := strings.CutSuffix(f.Name(), ".json")
			if !found || checkKey(key) != nil {
				continue
			}
			info, err := f.Info()
			if err != nil {
				continue
			}
			out = append(out, entry{key: key, modUnix: info.ModTime().UnixNano()})
		}
	}
	return out, nil
}

// RecentKeys returns up to limit stored keys, most recently written first
// (ties broken by key so the order is stable). limit <= 0 returns all. The
// farm's warm-start uses this to reload the hottest results into its LRU.
func (s *Store) RecentKeys(limit int) ([]string, error) {
	entries, err := s.keys()
	if err != nil {
		return nil, err
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].modUnix != entries[j].modUnix {
			return entries[i].modUnix > entries[j].modUnix
		}
		return entries[i].key < entries[j].key
	})
	if limit > 0 && len(entries) > limit {
		entries = entries[:limit]
	}
	keys := make([]string, len(entries))
	for i, e := range entries {
		keys[i] = e.key
	}
	return keys, nil
}
