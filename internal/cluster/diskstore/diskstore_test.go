package diskstore

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/stats"
)

func testKey(i int) string {
	return fmt.Sprintf("%064x", i)
}

func testReport(i int) *cpelide.Report {
	sheet := stats.New()
	sheet.Add(stats.L2FlushOps, uint64(i))
	kd := stats.NewHistogram("kernel duration (cycles)")
	kd.Observe(uint64(100 + i))
	return &cpelide.Report{
		Workload:  "square",
		Protocol:  "CPElide",
		Chiplets:  4,
		Cycles:    uint64(1000 + i),
		Sheet:     sheet,
		Kernels:   3,
		Accesses:  uint64(50 * i),
		KernelDur: kd,
		ImageHash: uint64(i) * 0x9e3779b97f4a7c15,
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key, rep := testKey(1), testReport(1)

	if _, ok, err := s.Get(key); ok || err != nil {
		t.Fatalf("get before put: ok=%v err=%v", ok, err)
	}
	if err := s.Put(key, rep); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get(key)
	if err != nil || !ok {
		t.Fatalf("get after put: ok=%v err=%v", ok, err)
	}
	// The store's contract is JSON-level byte identity: a loaded report
	// must re-serialize exactly as the original did.
	a, _ := json.Marshal(rep)
	b, _ := json.Marshal(got)
	if !bytes.Equal(a, b) {
		t.Fatalf("round trip not byte-identical:\n%s\n%s", a, b)
	}
	if got.KernelDur.Count() != 1 || got.KernelDur.Max() != 101 {
		t.Fatalf("histogram lost in round trip: %+v", got.KernelDur)
	}
	if n, err := s.Len(); err != nil || n != 1 {
		t.Fatalf("len=%d err=%v, want 1", n, err)
	}

	// Overwrite is idempotent.
	if err := s.Put(key, rep); err != nil {
		t.Fatal(err)
	}
	if n, _ := s.Len(); n != 1 {
		t.Fatalf("len=%d after overwrite, want 1", n)
	}
}

func TestBadKeys(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"",
		"short",
		"../../../../etc/passwd",
		testKey(1)[:63] + "Z",                   // uppercase / non-hex
		"../" + testKey(1)[:61],                 // traversal at full length
		testKey(1)[:32] + "/" + testKey(1)[:31], // separator inside
		testKey(1)[:63] + "G",                   // non-hex tail
	} {
		if err := s.Put(key, testReport(0)); !errors.Is(err, ErrBadKey) {
			t.Errorf("Put(%q): err=%v, want ErrBadKey", key, err)
		}
		if _, _, err := s.Get(key); !errors.Is(err, ErrBadKey) {
			t.Errorf("Get(%q): err=%v, want ErrBadKey", key, err)
		}
	}
	if err := s.Put(testKey(1), nil); err == nil {
		t.Error("Put(nil report) accepted")
	}
	if _, err := Open(""); err == nil {
		t.Error("Open(\"\") accepted")
	}
}

func TestCorruptEntryIsErrorNotMiss(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(2)
	if err := s.Put(key, testReport(2)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, key[:2], key+".json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, ok, err := s.Get(key)
	if ok || err == nil {
		t.Fatalf("corrupt entry: ok=%v err=%v, want miss with error", ok, err)
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	// The corrupt file was moved aside, so the next Get is a clean miss and
	// a fresh Put repairs the entry.
	if _, ok, err := s.Get(key); ok || err != nil {
		t.Fatalf("get after quarantine: ok=%v err=%v, want clean miss", ok, err)
	}
	if n, err := s.QuarantineCount(); err != nil || n != 1 {
		t.Fatalf("quarantine count = %d err=%v, want 1", n, err)
	}
	if s.CorruptCount() != 1 {
		t.Fatalf("corrupt count = %d, want 1", s.CorruptCount())
	}
	if err := s.Put(key, testReport(2)); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get(key); !ok || err != nil {
		t.Fatalf("get after repair: ok=%v err=%v", ok, err)
	}
}

// TestChecksumMismatchQuarantines flips one byte inside the report payload
// of a valid envelope: the CRC must catch it, the file must be quarantined,
// and the OnCorrupt hook must fire — never a wrong answer served.
func TestChecksumMismatchQuarantines(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var hooked []string
	s.OnCorrupt = func(key string) { hooked = append(hooked, key) }
	key := testKey(3)
	if err := s.Put(key, testReport(3)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key[:2], key+".json")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a digit inside the report payload without breaking JSON syntax.
	i := bytes.Index(b, []byte(`"Cycles":`))
	if i < 0 {
		t.Fatalf("no Cycles field in %s", b)
	}
	b[i+len(`"Cycles":`)] ^= 0x01 // '1' <-> '0'
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, ok, err := s.Get(key)
	if ok || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit-flipped entry: ok=%v err=%v, want ErrCorrupt", ok, err)
	}
	if len(hooked) != 1 || hooked[0] != key {
		t.Fatalf("OnCorrupt calls = %v, want [%s]", hooked, key)
	}
	if _, err := os.Stat(filepath.Join(dir, "quarantine", key+".json")); err != nil {
		t.Fatalf("corrupt file not quarantined: %v", err)
	}
	// The quarantine directory must not pollute the key scan.
	if n, err := s.Len(); err != nil || n != 0 {
		t.Fatalf("len=%d err=%v after quarantine, want 0", n, err)
	}
}

// TestLegacyBareReport reads a pre-envelope file (bare report JSON) written
// by an older worker: the migration path must serve it unchanged.
func TestLegacyBareReport(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key, rep := testKey(4), testReport(4)
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, key[:2]), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, key[:2], key+".json"), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get(key)
	if !ok || err != nil {
		t.Fatalf("legacy get: ok=%v err=%v", ok, err)
	}
	b, _ := json.Marshal(got)
	if !bytes.Equal(raw, b) {
		t.Fatalf("legacy round trip not byte-identical:\n%s\n%s", raw, b)
	}
}

// TestUnknownSchemaQuarantines: a future envelope version this binary does
// not understand must fail closed, not be misread as a legacy report.
func TestUnknownSchemaQuarantines(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(5)
	if err := os.MkdirAll(filepath.Join(dir, key[:2]), 0o755); err != nil {
		t.Fatal(err)
	}
	blob := []byte(`{"schema":"diskstore/v9","crc32c":"00000000","report":{}}`)
	if err := os.WriteFile(filepath.Join(dir, key[:2], key+".json"), blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get(key); ok || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("future schema: ok=%v err=%v, want ErrCorrupt", ok, err)
	}
}

func TestRecentKeysOrderAndLimit(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Distinct mtimes, oldest first, set explicitly so the test does not
	// depend on filesystem timestamp resolution.
	base := time.Now().Add(-time.Hour)
	for i := 0; i < 5; i++ {
		key := testKey(i)
		if err := s.Put(key, testReport(i)); err != nil {
			t.Fatal(err)
		}
		mt := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(s.path(key), mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	keys, err := s.RecentKeys(3)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{testKey(4), testKey(3), testKey(2)}
	if len(keys) != 3 || keys[0] != want[0] || keys[1] != want[1] || keys[2] != want[2] {
		t.Fatalf("RecentKeys(3) = %v, want %v", keys, want)
	}
	all, err := s.RecentKeys(0)
	if err != nil || len(all) != 5 {
		t.Fatalf("RecentKeys(0) = %d keys, err=%v, want all 5", len(all), err)
	}
	// Stray files that are not content-addressed entries are ignored.
	if err := os.WriteFile(filepath.Join(dir, testKey(0)[:2], "stray.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if n, err := s.Len(); err != nil || n != 5 {
		t.Fatalf("len=%d err=%v after stray file, want 5", n, err)
	}
}

// TestConcurrentSharedDirectory hammers one directory through two Store
// handles (standing in for two worker processes): concurrent puts and gets
// of overlapping keys must never surface a partial file.
func TestConcurrentSharedDirectory(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 16
	var wg sync.WaitGroup
	errs := make(chan error, 4*keys*8)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			st := s1
			if g%2 == 1 {
				st = s2
			}
			for round := 0; round < 8; round++ {
				for i := 0; i < keys; i++ {
					if err := st.Put(testKey(i), testReport(i)); err != nil {
						errs <- err
						return
					}
					if rep, ok, err := st.Get(testKey((i + g) % keys)); err != nil {
						errs <- err
						return
					} else if ok && rep.Workload != "square" {
						errs <- fmt.Errorf("partial read: %+v", rep)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n, err := s1.Len(); err != nil || n != keys {
		t.Fatalf("len=%d err=%v, want %d", n, err, keys)
	}
}
