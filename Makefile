GO ?= go

.PHONY: all build test race lint cpelint fmt bench bench-gate cluster loadgen cluster-smoke chaos-smoke

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency-heavy packages under the race detector, mirroring CI: the
# farm's single-flight dedup and backpressure, the event engine the whole
# simulation core schedules through, and the HTTP server's drain path.
race:
	$(GO) test -race -count=1 -timeout 15m ./internal/farm/... ./internal/event/... ./internal/server/... ./internal/cluster/...

# lint = the repo's static gates: the cpelint pass suite (DESIGN §12), go
# vet, and gofmt. staticcheck runs in CI where it can be installed.
lint: cpelint
	$(GO) vet ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

cpelint:
	$(GO) run ./cmd/cpelint ./...

fmt:
	gofmt -w .

# A local 3-worker cluster behind a coordinator on :8070, persistent store
# in /tmp/cpelide-store (override with CPELIDE_STORE). Foreground; Ctrl-C
# tears it down. Drive it with `make loadgen` from another shell.
cluster:
	@bash scripts/cluster_up.sh

# A reproducible 200-job campaign against the local cluster (or any server:
# LOADGEN_ADDR=http://host:8080 make loadgen).
loadgen:
	$(GO) run ./cmd/loadgen -addr $(or $(LOADGEN_ADDR),http://localhost:8070) \
		-jobs 200 -distinct 100 -seed 42 -scale 0.05

# The CI cluster gate, locally: 3 workers, a 200-job campaign with a worker
# crashed mid-run (zero lost jobs required), and a restart-from-store replay
# that must re-simulate nothing. Writes BENCH_cluster.json.
cluster-smoke:
	@bash scripts/cluster_smoke.sh

# The CI chaos gate, locally: SIGKILL the coordinator mid-campaign, restart
# it over the same journal (zero lost jobs), corrupt one store file
# (quarantined + recomputed, store_corrupt_total == quarantine count).
# Writes BENCH_chaos.json.
chaos-smoke:
	@bash scripts/chaos_smoke.sh

# Re-measure the committed performance baseline (run on a quiet machine).
bench:
	$(GO) run ./cmd/bench -out BENCH_core.json

# The CI regression gate, locally: measure now, compare the
# machine-independent metrics against the committed baseline.
bench-gate:
	$(GO) run ./cmd/bench -benchtime 200ms -out /tmp/BENCH_current.json
	$(GO) run ./cmd/bench -against /tmp/BENCH_current.json -baseline BENCH_core.json -metrics allocs,cycles,accesses -max-regress 0.10
