GO ?= go

.PHONY: all build test race lint cpelint fmt bench bench-gate

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency-heavy packages under the race detector, mirroring CI: the
# farm's single-flight dedup and backpressure, the event engine the whole
# simulation core schedules through, and the HTTP server's drain path.
race:
	$(GO) test -race -count=1 -timeout 15m ./internal/farm/... ./internal/event/... ./cmd/cpelide-server/...

# lint = the repo's static gates: the cpelint pass suite (DESIGN §12), go
# vet, and gofmt. staticcheck runs in CI where it can be installed.
lint: cpelint
	$(GO) vet ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

cpelint:
	$(GO) run ./cmd/cpelint ./...

fmt:
	gofmt -w .

# Re-measure the committed performance baseline (run on a quiet machine).
bench:
	$(GO) run ./cmd/bench -out BENCH_core.json

# The CI regression gate, locally: measure now, compare the
# machine-independent metrics against the committed baseline.
bench-gate:
	$(GO) run ./cmd/bench -benchtime 200ms -out /tmp/BENCH_current.json
	$(GO) run ./cmd/bench -against /tmp/BENCH_current.json -baseline BENCH_core.json -metrics allocs,cycles,accesses -max-regress 0.10
