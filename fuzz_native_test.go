package cpelide

import (
	"testing"

	"repro/internal/gen"
)

// FuzzCrosscheckDAG is the native-fuzzing entry into the differential
// harness: the fuzzer picks a generator seed and a machine shape, and the
// target runs the generated DAG under Baseline and CPElide with the
// consistency oracle attached, asserting the full crosscheck invariant set
// — no oracle violation, no stale read, byte-identical memory images, and
// CPElide's sync operations a subset of Baseline's. Anything the fuzzer
// finds is a real protocol or oracle bug, minimized to (seed, shape).
func FuzzCrosscheckDAG(f *testing.F) {
	f.Add(uint64(0), byte(0))
	f.Add(uint64(17), byte(1))
	f.Add(uint64(93), byte(2))
	f.Add(uint64(1000), byte(3))
	f.Add(uint64(424242), byte(5))

	f.Fuzz(func(t *testing.T, seed uint64, shape byte) {
		chiplets := []int{2, 4, 7}[int(shape)%3]
		c := gen.Generate(seed, gen.Config{Chiplets: chiplets, MaxKernels: 6, MaxStreams: 2})
		cfg := DefaultConfig(chiplets)
		opt := Options{Placement: c.Placement}
		if shape&4 != 0 {
			opt.CPElideTableEntries = 3 // force the eviction path
			cfg.L2SizeBytes = 256 << 10
		}
		if shape&8 != 0 {
			opt.CPElideRangeOps = true
		}

		run := func(p Protocol) (*Report, *Oracle) {
			o := NewOracle(p)
			po := opt
			po.Protocol = p
			po.Oracle = o
			rep, err := RunStreams(cfg, c.Specs, po)
			if err != nil {
				t.Fatalf("%s / %v: %v", c.Name, p, err)
			}
			if rep.StaleReads != 0 {
				t.Fatalf("%s / %v: %d stale reads", c.Name, p, rep.StaleReads)
			}
			if err := o.Err(); err != nil {
				t.Fatalf("%s / %v: %v", c.Name, p, err)
			}
			return rep, o
		}
		baseRep, baseOracle := run(ProtocolBaseline)
		elideRep, elideOracle := run(ProtocolCPElide)
		if baseRep.ImageHash != elideRep.ImageHash {
			t.Fatalf("%s: memory image diverged: CPElide %#x vs Baseline %#x",
				c.Name, elideRep.ImageHash, baseRep.ImageHash)
		}
		if broken := elideOracle.SubsetOf(baseOracle); len(broken) != 0 {
			t.Fatalf("%s: CPElide issued ops Baseline did not: %+v", c.Name, broken)
		}
	})
}
