#!/usr/bin/env bash
# Cluster smoke: a coordinator fronting three cpelide-server workers over one
# shared store directory runs a 200-job campaign while one worker is crashed
# mid-run (SIGKILL, not a graceful drain). Gates, in order:
#
#   1. loadgen exits nonzero if any job is lost or failed — the campaign must
#      complete 200/200 across the kill.
#   2. The coordinator must have noticed: cluster_workers_healthy == 2.
#   3. A brand-new worker over the same store directory must serve a replay
#      of the campaign with zero new simulations (runs == 0).
#
# Writes a combined BENCH_cluster.json (schema cluster/v1) with the 3-node
# kill run, a 1-node cold run for comparison, and the restart-from-store run.
set -euo pipefail

cd "$(dirname "$0")/.."
OUT=${OUT:-BENCH_cluster.json}
BIN=$(mktemp -d)
STORE=$(mktemp -d)
SCRATCH=$(mktemp -d)
PIDS=()
cleanup() { for p in "${PIDS[@]:-}"; do kill -9 "$p" 2>/dev/null || true; done; }
trap cleanup EXIT

go build -o "$BIN/" ./cmd/cpelide-coordinator ./cmd/cpelide-server ./cmd/loadgen

# Up = answering HTTP at all; a coordinator with no workers yet answers 503.
wait_up() {
  for _ in $(seq 1 50); do
    code=$(curl -s -o /dev/null -w '%{http_code}' "$1/healthz" 2>/dev/null || echo 000)
    [ "$code" != 000 ] && return
    sleep 0.2
  done
  echo "never came up: $1" >&2
  exit 1
}

loadgen_campaign() { # base-url out-file
  "$BIN/loadgen" -addr "$1" -jobs 200 -distinct 100 -concurrency 16 \
    -scale 0.05 -seed 42 -poll 25ms -out "$2"
}

# --- phase 1: 3 workers, kill one mid-campaign -------------------------------
# The coordinator runs journaled so the smoke also covers the WAL's normal
# (non-crash) path; scripts/chaos_smoke.sh covers crash recovery itself.
COORD=http://127.0.0.1:8370
"$BIN/cpelide-coordinator" -addr 127.0.0.1:8370 -health-interval 100ms \
  -fail-threshold 2 -journal "$SCRATCH/coordinator.journal" &
PIDS+=($!)
wait_up "$COORD"

declare -A WPID
for i in 1 2 3; do
  "$BIN/cpelide-server" -addr "127.0.0.1:837$i" -coordinator "$COORD" \
    -advertise "http://127.0.0.1:837$i" -node "w$i" -store "$STORE" -queue 64 &
  WPID[$i]=$!
  PIDS+=($!)
  wait_up "http://127.0.0.1:837$i"
done

loadgen_campaign "$COORD" "$SCRATCH/three_node.json" &
LG=$!
PIDS+=($LG)

# Crash a worker once the campaign is visibly in flight.
JOBS=0
for _ in $(seq 1 300); do
  JOBS=$(curl -fsS "$COORD/v1/stats" 2>/dev/null | jq -r '.farm.jobs' || echo 0)
  [ "$JOBS" -ge 40 ] && break
  sleep 0.1
done
[ "$JOBS" -ge 40 ] || { echo "campaign never reached 40 farm jobs" >&2; exit 1; }
kill -9 "${WPID[2]}"
echo "crashed w2 at $JOBS farm jobs"

wait "$LG" # gate 1: nonzero exit on any lost or failed job

METRICS=$(curl -fsS "$COORD/metrics")
HEALTHY=$(awk '$1 == "cluster_workers_healthy" { print $2 }' <<<"$METRICS")
[ "$HEALTHY" = 2 ] || { echo "cluster_workers_healthy = $HEALTHY, want 2" >&2; exit 1; }
JERRS=$(awk '$1 == "cluster_journal_errors_total" { print $2 }' <<<"$METRICS")
[ "${JERRS:-0}" = 0 ] || { echo "cluster_journal_errors_total = $JERRS, want 0" >&2; exit 1; }
grep '^cluster_' <<<"$METRICS"

cleanup
PIDS=()

# --- phase 2: 1-node cold run for the artifact's node-count comparison -------
COORD1=http://127.0.0.1:8380
"$BIN/cpelide-coordinator" -addr 127.0.0.1:8380 -health-interval 100ms &
PIDS+=($!)
wait_up "$COORD1"
"$BIN/cpelide-server" -addr 127.0.0.1:8381 -coordinator "$COORD1" \
  -advertise http://127.0.0.1:8381 -node solo -store "$(mktemp -d)" -queue 64 &
PIDS+=($!)
wait_up http://127.0.0.1:8381
loadgen_campaign "$COORD1" "$SCRATCH/one_node.json"
cleanup
PIDS=()

# --- phase 3: fresh worker over the dead cluster's store ---------------------
COORD2=http://127.0.0.1:8390
"$BIN/cpelide-coordinator" -addr 127.0.0.1:8390 -health-interval 100ms &
PIDS+=($!)
wait_up "$COORD2"
"$BIN/cpelide-server" -addr 127.0.0.1:8391 -coordinator "$COORD2" \
  -advertise http://127.0.0.1:8391 -node fresh -store "$STORE" -queue 64 &
PIDS+=($!)
wait_up http://127.0.0.1:8391
loadgen_campaign "$COORD2" "$SCRATCH/restart.json"

RUNS=$(jq -r '.runs' "$SCRATCH/restart.json")
[ "$RUNS" = 0 ] || { echo "restart campaign re-simulated $RUNS jobs; store should serve all" >&2; exit 1; }

jq -n --slurpfile three "$SCRATCH/three_node.json" \
      --slurpfile one "$SCRATCH/one_node.json" \
      --slurpfile restart "$SCRATCH/restart.json" \
      '{schema: "cluster/v1",
        three_node_cold_with_kill: $three[0],
        one_node_cold: $one[0],
        restart_from_store: $restart[0]}' > "$OUT"
echo "wrote $OUT"
jq '{three_node_jps: .three_node_cold_with_kill.throughput_jps,
     one_node_jps: .one_node_cold.throughput_jps,
     restart_jps: .restart_from_store.throughput_jps,
     restart_runs: .restart_from_store.runs}' "$OUT"
