#!/usr/bin/env bash
# Start a local experiment cluster: a coordinator on :8070 fronting three
# cpelide-server workers on :8081-:8083 sharing one persistent store
# directory (CPELIDE_STORE, default /tmp/cpelide-store — results survive
# restarts). Runs in the foreground; Ctrl-C tears everything down.
#
#   make cluster          # this script
#   make loadgen          # a 200-job campaign against it, from another shell
set -euo pipefail

cd "$(dirname "$0")/.."
STORE=${CPELIDE_STORE:-/tmp/cpelide-store}
BIN=$(mktemp -d)
PIDS=()
cleanup() { for p in "${PIDS[@]:-}"; do kill "$p" 2>/dev/null || true; done; }
trap cleanup EXIT INT TERM

go build -o "$BIN/" ./cmd/cpelide-coordinator ./cmd/cpelide-server

"$BIN/cpelide-coordinator" -addr :8070 &
PIDS+=($!)
for _ in $(seq 1 50); do
  code=$(curl -s -o /dev/null -w '%{http_code}' http://localhost:8070/healthz 2>/dev/null || echo 000)
  [ "$code" != 000 ] && break
  sleep 0.2
done

for i in 1 2 3; do
  "$BIN/cpelide-server" -addr ":808$i" -coordinator http://localhost:8070 \
    -advertise "http://localhost:808$i" -node "w$i" -store "$STORE" &
  PIDS+=($!)
done

echo "cluster up: coordinator http://localhost:8070, workers w1-w3, store $STORE"
echo "try: go run ./cmd/loadgen -addr http://localhost:8070 -jobs 200 -distinct 100"
wait
