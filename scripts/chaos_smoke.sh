#!/usr/bin/env bash
# Chaos smoke: proves the cluster's failure story with real processes and
# real signals. Two phases, each with a hard gate:
#
#   1. Crash recovery: a journaled coordinator fronting three workers runs a
#      200-job campaign and is SIGKILLed mid-run, then restarted over the
#      same journal at the same address. Gates: the campaign completes with
#      zero lost/failed jobs (loadgen exits nonzero otherwise) and the
#      restarted coordinator reports recovered journal state.
#   2. Store integrity: one stored result file is overwritten with garbage,
#      and a fresh worker replays the campaign over the damaged store.
#      Gates: store_corrupt_total == quarantined file count, exactly the
#      corrupted job re-simulates, and the campaign still completes clean.
#
# Writes BENCH_chaos.json (schema chaos/v1): coordinator recovery time, the
# hedge counters, and both campaign results.
set -euo pipefail

cd "$(dirname "$0")/.."
OUT=${OUT:-BENCH_chaos.json}
BIN=$(mktemp -d)
STORE=$(mktemp -d)
SCRATCH=$(mktemp -d)
JOURNAL="$SCRATCH/coordinator.journal"
PIDS=()
cleanup() { for p in "${PIDS[@]:-}"; do kill -9 "$p" 2>/dev/null || true; done; }
trap cleanup EXIT

go build -o "$BIN/" ./cmd/cpelide-coordinator ./cmd/cpelide-server ./cmd/loadgen

wait_up() { # base-url
  for _ in $(seq 1 100); do
    code=$(curl -s -o /dev/null -w '%{http_code}' "$1/healthz" 2>/dev/null || echo 000)
    [ "$code" != 000 ] && return
    sleep 0.1
  done
  echo "never came up: $1" >&2
  exit 1
}

# --- phase 1: SIGKILL the coordinator mid-campaign, restart over journal ----
COORD=http://127.0.0.1:8470
start_coordinator() { # retries the bind: right after SIGKILL the port can lag
  for _ in 1 2 3 4 5; do
    "$BIN/cpelide-coordinator" -addr 127.0.0.1:8470 -health-interval 100ms \
      -fail-threshold 2 -journal "$JOURNAL" -hedge-after 250ms &
    CPID=$!
    PIDS+=($CPID)
    for _ in $(seq 1 50); do
      kill -0 "$CPID" 2>/dev/null || break # bind failed, process exited
      code=$(curl -s -o /dev/null -w '%{http_code}' "$COORD/healthz" 2>/dev/null || echo 000)
      [ "$code" != 000 ] && return
      sleep 0.1
    done
    kill -9 "$CPID" 2>/dev/null || true
    sleep 0.2
  done
  echo "coordinator never came up at $COORD" >&2
  exit 1
}
start_coordinator

for i in 1 2 3; do
  "$BIN/cpelide-server" -addr "127.0.0.1:847$i" -coordinator "$COORD" \
    -advertise "http://127.0.0.1:847$i" -node "w$i" -store "$STORE" -queue 64 &
  PIDS+=($!)
  wait_up "http://127.0.0.1:847$i"
done

"$BIN/loadgen" -addr "$COORD" -jobs 200 -distinct 100 -concurrency 16 \
  -scale 0.05 -seed 42 -poll 25ms -retry-base 50ms -retry-max 500ms \
  -out "$SCRATCH/crash.json" &
LG=$!
PIDS+=($LG)

JOBS=0
for _ in $(seq 1 300); do
  JOBS=$(curl -fsS "$COORD/v1/stats" 2>/dev/null | jq -r '.farm.jobs' || echo 0)
  [ "$JOBS" -ge 40 ] && break
  sleep 0.1
done
[ "$JOBS" -ge 40 ] || { echo "campaign never reached 40 farm jobs" >&2; exit 1; }

kill -9 "$CPID"
echo "SIGKILLed coordinator at $JOBS farm jobs"
T0=$(date +%s%N)
start_coordinator
T1=$(date +%s%N)
RECOVERY_MS=$(( (T1 - T0) / 1000000 ))
echo "coordinator restarted over journal in ${RECOVERY_MS}ms"

wait "$LG" # gate: loadgen exits nonzero on any lost or failed job

METRICS=$(curl -fsS "$COORD/metrics")
RECOVERED=$(awk '$1 == "cluster_journal_recovered_jobs" { print $2 }' <<<"$METRICS")
JERRS=$(awk '$1 == "cluster_journal_errors_total" { print $2 }' <<<"$METRICS")
HEDGES=$(awk '$1 == "cluster_hedges_total" { print $2 }' <<<"$METRICS")
HEDGE_WINS=$(awk '$1 == "cluster_hedge_wins_total" { print $2 }' <<<"$METRICS")
[ "${RECOVERED:-0}" -gt 0 ] || { echo "restarted coordinator recovered 0 jobs from the journal" >&2; exit 1; }
[ "${JERRS:-0}" = 0 ] || { echo "cluster_journal_errors_total = $JERRS, want 0" >&2; exit 1; }
grep '^cluster_journal' <<<"$METRICS"

cleanup
PIDS=()

# --- phase 2: corrupt one stored result, replay over the damaged store ------
VICTIM=$(find "$STORE" -mindepth 2 -name '*.json' -not -path '*/quarantine/*' | sort | head -1)
[ -n "$VICTIM" ] || { echo "no stored results to corrupt" >&2; exit 1; }
echo "this is not a report" > "$VICTIM"
echo "corrupted $VICTIM"

WORKER=http://127.0.0.1:8480
"$BIN/cpelide-server" -addr 127.0.0.1:8480 -node fresh -store "$STORE" -queue 64 &
PIDS+=($!)
wait_up "$WORKER"

"$BIN/loadgen" -addr "$WORKER" -jobs 200 -distinct 100 -concurrency 16 \
  -scale 0.05 -seed 42 -poll 25ms -out "$SCRATCH/corrupt.json"

CORRUPT=$(curl -fsS "$WORKER/metrics" | awk '$1 == "store_corrupt_total" { print $2 }')
QUARANTINED=$(find "$STORE/quarantine" -name '*.json' 2>/dev/null | wc -l)
RUNS=$(jq -r '.runs' "$SCRATCH/corrupt.json")
[ "${CORRUPT:-0}" = "$QUARANTINED" ] || {
  echo "store_corrupt_total = $CORRUPT but $QUARANTINED files quarantined" >&2; exit 1; }
[ "$QUARANTINED" = 1 ] || { echo "quarantined $QUARANTINED files, want 1" >&2; exit 1; }
[ "$RUNS" = 1 ] || { echo "replay re-simulated $RUNS jobs, want exactly the corrupted 1" >&2; exit 1; }
echo "corruption quarantined and recomputed: corrupt=$CORRUPT quarantined=$QUARANTINED runs=$RUNS"

jq -n --slurpfile crash "$SCRATCH/crash.json" \
      --slurpfile corrupt "$SCRATCH/corrupt.json" \
      --argjson recovery_ms "$RECOVERY_MS" \
      --argjson kill_at_jobs "$JOBS" \
      --argjson hedges "${HEDGES:-0}" \
      --argjson hedge_wins "${HEDGE_WINS:-0}" \
      '{schema: "chaos/v1",
        recovery_ms: $recovery_ms,
        kill_at_jobs: $kill_at_jobs,
        hedges: $hedges,
        hedge_wins: $hedge_wins,
        hedge_win_rate: (if $hedges > 0 then $hedge_wins / $hedges else 0 end),
        crash_campaign: $crash[0],
        corruption_campaign: $corrupt[0]}' > "$OUT"
echo "wrote $OUT"
jq '{recovery_ms, kill_at_jobs, hedge_win_rate,
     crash_lost: .crash_campaign.lost,
     crash_retries: .crash_campaign.transient_retries,
     corruption_runs: .corruption_campaign.runs}' "$OUT"
