module repro

go 1.22

// Pinned for cmd/cpelint: the pass suite is written against the go/analysis
// vocabulary and can be rebased onto the real golang.org/x/tools/go/analysis
// framework at exactly this version once the build environment allows
// downloading it. Nothing imports the module yet — internal/analysis is a
// dependency-free reimplementation of the subset cpelint needs — so builds
// never fetch it.
require golang.org/x/tools v0.24.0
