// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation (see DESIGN.md's per-experiment index). Each benchmark
// regenerates the corresponding series and reports the paper's headline
// metric as a custom unit alongside the runtime.
//
// Full-paper inputs:
//
//	go test -bench=. -benchmem
//
// Quick pass (reduced footprints):
//
//	go test -bench=. -benchmem -short
package cpelide_test

import (
	"testing"

	"repro"
	"repro/internal/experiments"
	"repro/internal/workloads"
)

// benchParams picks full-paper inputs normally, reduced inputs under -short.
func benchParams(b *testing.B) experiments.Params {
	if testing.Short() {
		return experiments.Params{Scale: 0.1}
	}
	return experiments.Params{}
}

// BenchmarkFigure2 regenerates the motivation figure: 4-chiplet baseline
// slowdown versus the equivalent monolithic GPU (paper: ~54% average loss,
// prior work 29-45%).
func BenchmarkFigure2(b *testing.B) {
	p := benchParams(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure2(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Summary["geomean(slowdown)"], "slowdown")
	}
}

// BenchmarkFigure8 regenerates the main performance figure per chiplet
// count (paper, 4 chiplets: CPElide +13% over Baseline, +19% over HMG).
func BenchmarkFigure8(b *testing.B) {
	for _, n := range []int{2, 4, 6, 7} {
		n := n
		b.Run(benchName("chiplets", n), func(b *testing.B) {
			p := benchParams(b)
			for i := 0; i < b.N; i++ {
				results, err := experiments.Figure8(p, n)
				if err != nil {
					b.Fatal(err)
				}
				res := results[n]
				b.ReportMetric(res.Summary["geomean(CPElide)"], "CPElide-speedup")
				b.ReportMetric(res.Summary["geomean(HMG)"], "HMG-speedup")
			}
		})
	}
}

// BenchmarkFigure9 regenerates the 4-chiplet energy figure (paper: CPElide
// -14% vs Baseline, -11% vs HMG).
func BenchmarkFigure9(b *testing.B) {
	p := benchParams(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure9(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Summary["geomean(CPElide)"], "CPElide-energy")
		b.ReportMetric(res.Summary["geomean(HMG)"], "HMG-energy")
	}
}

// BenchmarkFigure10 regenerates the 4-chiplet interconnect-traffic figure
// (paper: CPElide -14% vs Baseline, -17% vs HMG).
func BenchmarkFigure10(b *testing.B) {
	p := benchParams(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure10(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Summary["geomean(CPElide)"], "CPElide-flits")
		b.ReportMetric(res.Summary["geomean(HMG)"], "HMG-flits")
	}
}

// BenchmarkTableII regenerates the workload inventory's reuse metric.
func BenchmarkTableII(b *testing.B) {
	p := benchParams(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableII(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScalingStudy regenerates the Section VI 8-/16-chiplet projection
// (paper: 1% and 2% average slowdown).
func BenchmarkScalingStudy(b *testing.B) {
	p := benchParams(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.ScalingStudy(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Summary["geomean(8-chiplet-mimic)"], "mimic8-slowdown")
		b.ReportMetric(res.Summary["geomean(16-chiplet-mimic)"], "mimic16-slowdown")
	}
}

// BenchmarkMultiStream regenerates the Section VI multi-stream study
// (paper: CPElide +12% over HMG).
func BenchmarkMultiStream(b *testing.B) {
	p := benchParams(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.MultiStream(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Summary["geomean(CPElide)"], "CPElide-speedup")
		b.ReportMetric(res.Summary["geomean(HMG)"], "HMG-speedup")
	}
}

// BenchmarkHMGWriteBackAblation regenerates the Section IV-C write-back HMG
// comparison (paper: write-back 13% worse geomean).
func BenchmarkHMGWriteBackAblation(b *testing.B) {
	p := benchParams(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.HMGWriteBack(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Summary["geomean(WB-vs-WT)"], "WB-speedup")
	}
}

// BenchmarkAblationRangeOps measures the Section VI fine-grained hardware
// range-flush extension against default whole-cache operations.
func BenchmarkAblationRangeOps(b *testing.B) {
	p := benchParams(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.RangeOps(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Summary["geomean(range-ops)"], "range-speedup")
	}
}

// BenchmarkAblationAnnotations compares hipSetAccessMode-only annotations
// against full hipSetAccessModeRange metadata.
func BenchmarkAblationAnnotations(b *testing.B) {
	p := benchParams(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.AnnotationGranularity(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Summary["geomean(mode-only)"], "mode-only-speedup")
	}
}

// BenchmarkAblationTableSize sweeps the Chiplet Coherence Table capacity.
func BenchmarkAblationTableSize(b *testing.B) {
	p := benchParams(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.TableSize(p, 4, 8, 64)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Summary["geomean(entries=4)"], "tiny-table-speedup")
	}
}

// BenchmarkAblationDirGranularity compares HMG's 4-lines-per-entry
// directory against 1 line per entry.
func BenchmarkAblationDirGranularity(b *testing.B) {
	p := benchParams(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.DirGranularity(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Summary["geomean(1-line-entries)"], "fine-dir-speedup")
	}
}

// BenchmarkExtensionDriverManaged measures the Section VI driver-managed
// alternative's cost relative to the CP-resident design.
func BenchmarkExtensionDriverManaged(b *testing.B) {
	p := benchParams(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.DriverManaged(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Summary["geomean(driver)"], "driver-speedup")
	}
}

// BenchmarkExtensionPagePlacement measures alternative page placement
// policies under CPElide.
func BenchmarkExtensionPagePlacement(b *testing.B) {
	p := benchParams(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.PagePlacement(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Summary["geomean(interleaved)"], "interleaved-speedup")
		b.ReportMetric(res.Summary["geomean(single)"], "single-speedup")
	}
}

// BenchmarkExtensionKernelFusion measures software kernel fusion on the
// baseline against CPElide.
func BenchmarkExtensionKernelFusion(b *testing.B) {
	p := benchParams(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.KernelFusion(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Summary["geomean(Base+fusion)"], "fusion-speedup")
		b.ReportMetric(res.Summary["geomean(CPElide)"], "CPElide-speedup")
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed (accesses per
// second) on one representative benchmark per protocol — the engineering
// metric for the simulator itself rather than a paper figure.
func BenchmarkSimulatorThroughput(b *testing.B) {
	for _, proto := range []cpelide.Protocol{
		cpelide.ProtocolBaseline, cpelide.ProtocolCPElide, cpelide.ProtocolHMG,
	} {
		proto := proto
		b.Run(proto.String(), func(b *testing.B) {
			cfg := cpelide.DefaultConfig(4)
			var accesses uint64
			for i := 0; i < b.N; i++ {
				alloc := cpelide.NewAllocator(cfg.PageSize)
				w, err := workloads.Build("babelstream", alloc, workloads.Params{Scale: 0.5})
				if err != nil {
					b.Fatal(err)
				}
				rep, err := cpelide.Run(cfg, w, cpelide.Options{Protocol: proto})
				if err != nil {
					b.Fatal(err)
				}
				accesses += rep.Accesses
			}
			b.ReportMetric(float64(accesses)/b.Elapsed().Seconds(), "accesses/s")
		})
	}
}

func benchName(prefix string, n int) string {
	return prefix + "=" + string(rune('0'+n))
}
